"""Optional FastAPI frontend — ``pip install .[service]`` to enable.

Same HTTP surface as the zero-dependency WSGI app in
:mod:`repro.service.app`, rebuilt as FastAPI routers for deployments that
want the production ASGI stack (uvicorn workers, OpenAPI docs at
``/docs``, pydantic request validation at the edge). Every handler is a
one-liner over the same :class:`~repro.service.jobs.JobManager`; business
behavior — validation, dedup, progress, report bytes — lives below the
frontend split, so the two apps cannot drift apart.

The import is gated: the core package keeps zero third-party
dependencies, and this module raises a actionable :class:`ReproError`
when FastAPI is absent instead of an ImportError at the call site.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ReproError
from repro.experiments.report import render_csv_rows, render_html_rows
from repro.service.jobs import JobManager
from repro.service.schemas import SchemaError, grid_listing
from repro.service.store import JobStore


def _require_fastapi():
    try:
        import fastapi  # noqa: F401
    except ImportError:
        raise ReproError(
            "the FastAPI frontend needs the [service] extra "
            "(pip install '.[service]'); the zero-dependency server is "
            "available as `repro serve --backend wsgi`"
        ) from None
    return fastapi


def create_fastapi_app(
    db: str = ":memory:",
    cache: Any = True,
    workers: Optional[int] = None,
    background: bool = True,
):
    """Build the FastAPI app (raises :class:`ReproError` without the extra)."""
    fastapi = _require_fastapi()
    from fastapi import FastAPI, HTTPException, Request
    from fastapi.responses import PlainTextResponse, StreamingResponse

    manager = JobManager(
        JobStore(db), cache=cache, workers=workers, background=background
    )
    app = FastAPI(
        title="repro serve",
        description="Sweep-as-a-service over the OFFRAMPS reproduction engine",
    )
    app.state.manager = manager

    def require_job(job_id: int) -> dict:
        job = manager.job(job_id)
        if job is None:
            raise HTTPException(status_code=404, detail=f"no job {job_id}")
        return job

    def require_rows(job_id: int):
        job = require_job(job_id)
        try:
            manager.require_done(job_id)
        except ReproError as exc:
            raise HTTPException(status_code=409, detail=str(exc)) from None
        return job, manager.rows(job_id)

    @app.get("/healthz")
    def healthz():
        return {"status": "ok", "jobs": manager.store.count()}

    @app.get("/grids")
    def grids():
        return {"grids": grid_listing()}

    @app.post("/jobs")
    async def submit(request: Request):
        try:
            payload = await request.json()
        except ValueError:
            raise HTTPException(
                status_code=400, detail="invalid JSON body"
            ) from None
        try:
            job, created = manager.submit(payload)
        except SchemaError as exc:
            raise HTTPException(status_code=400, detail=str(exc)) from None
        return fastapi.responses.JSONResponse(
            job, status_code=201 if created else 200
        )

    @app.get("/jobs")
    def list_jobs(limit: int = 50):
        return {"jobs": manager.jobs(limit=limit)}

    @app.get("/jobs/{job_id}")
    def job(job_id: int):
        return require_job(job_id)

    @app.get("/jobs/{job_id}/events")
    def events(job_id: int, timeout_s: float = 3600.0):
        require_job(job_id)
        return StreamingResponse(
            manager.event_stream(job_id, timeout_s=timeout_s),
            media_type="text/event-stream",
        )

    @app.get("/jobs/{job_id}/verdicts")
    def verdicts(job_id: int):
        job, rows = require_rows(job_id)
        return {"job": job["id"], "stats": job["stats"], "rows": rows}

    @app.get("/jobs/{job_id}/report.csv")
    def report_csv(job_id: int):
        _job, rows = require_rows(job_id)
        return PlainTextResponse(
            render_csv_rows(rows), media_type="text/csv; charset=utf-8"
        )

    @app.get("/jobs/{job_id}/report.html")
    def report_html(job_id: int):
        job, rows = require_rows(job_id)
        title = f"repro serve — job {job['id']}" + (
            f" (grid {job['grid']!r})" if job["grid"] else ""
        )
        return fastapi.responses.HTMLResponse(
            render_html_rows(rows, job["stats"] or {}, title=title)
        )

    return app


def run_uvicorn_server(app, host: str, port: int) -> None:
    """Serve the FastAPI app with uvicorn (part of the [service] extra)."""
    try:
        import uvicorn
    except ImportError:
        raise ReproError(
            "uvicorn is not installed (pip install '.[service]')"
        ) from None
    uvicorn.run(app, host=host, port=port)
