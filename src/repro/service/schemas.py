"""Wire schemas: what crosses the HTTP boundary, validated.

The service's request/response shapes are plain JSON; this module is the
single place they are parsed and validated, shared by every frontend (the
zero-dep WSGI app and the optional FastAPI app both call
:func:`parse_submission`), so a submission means exactly the same thing no
matter which server accepted it.

A submission names either a **registered grid** (``{"grid": "smoke"}``)
or an **ad-hoc scenario list**::

    {"scenarios": [{"name": "T2@tiny", "part": "tiny", "attack": "T2",
                    "detectors": ["golden", "quality"], "seed": 42,
                    "noise_sigma": 0.0}]}

plus execution knobs (``workers``, ``precise``, ``label``). Scenario
fields mirror :class:`~repro.experiments.scenario.ScenarioSpec`; parts,
attacks, and detectors are validated against their registries at parse
time so an invalid submission is a 400, not a failed job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

from repro.detection.protocol import DETECTOR_CLASSES
from repro.errors import ReproError
from repro.experiments.scenario import (
    ScenarioSpec,
    get_attack,
    get_part,
    grid_names,
    grid_scenarios,
)


class SchemaError(ReproError):
    """An invalid request body — maps to HTTP 400 in every frontend."""


_SCENARIO_FIELDS = {
    "name": str,
    "part": str,
    "attack": (str, type(None)),
    "detectors": (list, tuple),
    "seed": int,
    "golden_seed": int,
    "noise_sigma": (int, float),
    "uart_period_ms": int,
    "margin": (int, float),
}


@dataclass(frozen=True)
class Submission:
    """One validated sweep submission (grid or ad-hoc scenarios)."""

    scenarios: Tuple[ScenarioSpec, ...]
    grid: str = ""
    label: str = ""
    workers: int = 1
    fast_path: bool = True
    payload: Mapping[str, Any] = field(default_factory=dict)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _parse_scenario(entry: Any, index: int) -> ScenarioSpec:
    _require(
        isinstance(entry, Mapping),
        f"scenarios[{index}] must be an object, got {type(entry).__name__}",
    )
    unknown = sorted(set(entry) - set(_SCENARIO_FIELDS))
    _require(not unknown, f"scenarios[{index}] has unknown fields: {unknown}")
    _require("name" in entry, f"scenarios[{index}] needs a 'name'")
    kwargs: dict = {}
    for key, expected in _SCENARIO_FIELDS.items():
        if key not in entry:
            continue
        value = entry[key]
        _require(
            isinstance(value, expected) and not isinstance(value, bool),
            f"scenarios[{index}].{key} has the wrong type "
            f"({type(value).__name__})",
        )
        kwargs[key] = value
    if "detectors" in kwargs:
        detectors = tuple(kwargs["detectors"])
        _require(
            all(isinstance(d, str) for d in detectors) and detectors,
            f"scenarios[{index}].detectors must be a non-empty list of names",
        )
        bad = sorted(set(detectors) - set(DETECTOR_CLASSES))
        _require(
            not bad,
            f"scenarios[{index}] names unknown detectors {bad}; "
            f"registered: {sorted(DETECTOR_CLASSES)}",
        )
        kwargs["detectors"] = detectors
    spec = ScenarioSpec(**kwargs)
    # Registry validation up front: a bad part/attack name is a submission
    # error, not a FAILED job discovered minutes later.
    try:
        get_part(spec.part)
        if spec.attack is not None:
            get_attack(spec.attack)
    except ReproError as exc:
        raise SchemaError(f"scenarios[{index}]: {exc}") from None
    return spec


def parse_submission(payload: Any) -> Submission:
    """Validate a POST /jobs body into a :class:`Submission` (or raise 400)."""
    _require(
        isinstance(payload, Mapping),
        f"submission must be a JSON object, got {type(payload).__name__}",
    )
    unknown = sorted(
        set(payload) - {"grid", "scenarios", "workers", "precise", "label"}
    )
    _require(not unknown, f"submission has unknown fields: {unknown}")
    grid = payload.get("grid")
    adhoc = payload.get("scenarios")
    _require(
        (grid is None) != (adhoc is None),
        "submission needs exactly one of 'grid' or 'scenarios'",
    )
    workers = payload.get("workers", 1)
    _require(
        isinstance(workers, int) and not isinstance(workers, bool) and workers >= 0,
        "'workers' must be an integer >= 0",
    )
    precise = payload.get("precise", False)
    _require(isinstance(precise, bool), "'precise' must be a boolean")
    label = payload.get("label", "")
    _require(isinstance(label, str), "'label' must be a string")

    if grid is not None:
        _require(isinstance(grid, str), "'grid' must be a string")
        try:
            scenarios = tuple(grid_scenarios(grid))
        except ReproError:
            raise SchemaError(
                f"unknown grid {grid!r}; registered: {grid_names()}"
            ) from None
    else:
        _require(
            isinstance(adhoc, (list, tuple)) and adhoc,
            "'scenarios' must be a non-empty list",
        )
        scenarios = tuple(
            _parse_scenario(entry, index) for index, entry in enumerate(adhoc)
        )
        names = [spec.name for spec in scenarios]
        _require(
            len(names) == len(set(names)),
            "scenario names must be unique within a submission",
        )
    return Submission(
        scenarios=scenarios,
        grid=grid or "",
        label=label,
        workers=workers,
        fast_path=not precise,
        payload=dict(payload),
    )


def job_json(job: Mapping[str, Any]) -> dict:
    """A stored job row shaped for the wire (stable field order)."""
    return {
        "id": job["id"],
        "state": job["state"],
        "grid": job["grid"],
        "label": job["label"],
        "submission_key": job["submission_key"],
        "scenarios": job["scenarios"],
        "sessions_total": job["sessions_total"],
        "sessions_done": job["sessions_done"],
        "ok": job["ok"],
        "error": job["error"],
        "deduped_from": job["deduped_from"],
        "stats": job["stats"],
        "created_at": job["created_at"],
        "started_at": job["started_at"],
        "finished_at": job["finished_at"],
    }


def queue_status_json(status: Mapping[str, Any]) -> dict:
    """A shard queue's status snapshot shaped for the wire (stable order).

    What ``GET /queues/{q}`` serves and what the HTTP transport's
    coordinator-side polls parse — registered in the WIRE003 shard-queue
    protocol table, so reshaping it demands a service schema bump.
    """
    return {
        "queue": status["queue"],
        "stop": status["stop"],
        "pending": status["pending"],
        "claims": status["claims"],
        "done": status["done"],
    }


def grid_listing() -> list:
    """The registered grids as JSON (name, description, scenario count)."""
    from repro.experiments.scenario import GRIDS

    listing = []
    for name in grid_names():
        grid = GRIDS[name]
        try:
            count: Optional[int] = len(grid.build())
        except ReproError:  # pragma: no cover - registry in a broken state
            count = None
        listing.append(
            {"name": name, "description": grid.description, "scenarios": count}
        )
    return listing
