"""Sweep-as-a-service: HTTP API + persistent job store over the sweep engine.

Layering (thin on top, shared below)::

    frontends   app.ServiceApp (zero-dep WSGI)   fastapi_app (optional extra)
                      \\                              /
    business           jobs.JobManager  +  schemas.parse_submission
                                |
    storage               store.JobStore (SQLite: jobs + verdict_rows)
                                |
    engine        repro.experiments  (run_sweep / sweep_rows / renderers)

The core service has **zero third-party dependencies** — stdlib sqlite3
and WSGI only — matching the rest of the package; ``pip install
.[service]`` adds the FastAPI/uvicorn production frontend over the same
manager. Tests and CI drive the WSGI app in-process via
:class:`~repro.service.testclient.ServiceClient`.
"""

from repro.service.app import ServiceApp, create_app, run_wsgi_server
from repro.service.jobs import JobManager, submission_key
from repro.service.schemas import (
    SchemaError,
    Submission,
    grid_listing,
    job_json,
    parse_submission,
)
from repro.service.store import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SERVICE_SCHEMA_VERSION,
    JobStore,
)
from repro.service.testclient import ClientResponse, ServiceClient

__all__ = [
    "ServiceApp",
    "create_app",
    "run_wsgi_server",
    "JobManager",
    "submission_key",
    "SchemaError",
    "Submission",
    "grid_listing",
    "job_json",
    "parse_submission",
    "JobStore",
    "SERVICE_SCHEMA_VERSION",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "ClientResponse",
    "ServiceClient",
]
