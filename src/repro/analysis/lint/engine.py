"""The ``repro lint`` engine: discovery, config, suppressions, output.

Wiring around the rule catalog (:mod:`repro.analysis.lint.rules`):

* **Discovery** — walks the requested paths for ``.py`` files (skipping
  hidden directories and ``__pycache__``), parses each once, and hands
  the shared AST to every applicable rule.
* **Config** — ``[tool.repro.lint]`` in ``pyproject.toml`` provides the
  default path set and per-rule tables (``include``/``exempt`` path
  scoping plus rule-specific options such as WIRE002's wire allowlist).
  Paths in the config are relative to the pyproject's directory.
* **Suppressions** — ``# repro: lint-ignore[RULE]`` (comma-separate for
  several rules, ``*`` for all) on the offending line, or on a comment
  line directly above it, moves matching findings into the suppressed
  list instead of the failing one. Suppressions are expected to carry a
  one-line justification after the bracket.
* **Output** — stable text (``path:line:col: CODE message``) and JSON
  (schema version pinned by tests) renderings, plus the rule catalog.
"""

from __future__ import annotations

import ast
import json
import os
import re
import tomllib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.rules import (
    REGISTRY,
    Finding,
    ModuleContext,
    Rule,
)

JSON_SCHEMA_VERSION = 1
"""Bumped whenever the JSON rendering changes shape (CI consumers key on it)."""

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_*\s,]+)\]")


@dataclass
class LintConfig:
    """The resolved ``[tool.repro.lint]`` table."""

    paths: Tuple[str, ...] = ()
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, pyproject_path: str) -> "LintConfig":
        with open(pyproject_path, "rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("repro", {}).get("lint", {})
        paths = tuple(table.get("paths", ()))
        rule_options = {
            key: dict(value)
            for key, value in table.items()
            if isinstance(value, dict)
        }
        return cls(paths=paths, rule_options=rule_options)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    suppressed: List[Finding]
    files: int
    root: str

    @property
    def ok(self) -> bool:
        return not self.findings


def load_config(root: str) -> LintConfig:
    """The config for ``root`` (its ``pyproject.toml``, or empty defaults)."""
    pyproject = os.path.join(root, "pyproject.toml")
    if os.path.exists(pyproject):
        try:
            return LintConfig.from_pyproject(pyproject)
        except (OSError, tomllib.TOMLDecodeError):
            pass
    return LintConfig()


def discover(paths: Sequence[str], root: str) -> List[str]:
    """All ``.py`` files under the given paths (absolute, sorted, unique)."""
    out: Set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                out.add(os.path.abspath(absolute))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(out)


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line suppressed rule codes.

    A trailing comment covers its own line; a standalone comment line
    covers the following line too (the conventional "reason above the
    offending statement" style).
    """
    covered: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        covered.setdefault(lineno, set()).update(codes)
        if line.lstrip().startswith("#"):
            covered.setdefault(lineno + 1, set()).update(codes)
    return covered


def _suppressed(finding: Finding, covered: Dict[int, Set[str]]) -> bool:
    codes = covered.get(finding.line, ())
    return finding.rule in codes or "*" in codes


def build_rules(config: LintConfig) -> List[Rule]:
    """Instantiate the whole registry with the config's per-rule options."""
    return [cls(config.rule_options.get(cls.code, {})) for cls in REGISTRY]


def run_lint(
    paths: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Lint ``paths`` (or the config's default path set) under ``root``."""
    root = os.path.abspath(root or os.getcwd())
    if config is None:
        config = load_config(root)
    targets = list(paths) if paths else list(config.paths) or ["."]
    rules = build_rules(config)

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    files = discover(targets, root)
    for absolute in files:
        rel = os.path.relpath(absolute, root).replace(os.sep, "/")
        try:
            with open(absolute, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=rel)
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    rule="SYNTAX",
                    path=rel,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        module = ModuleContext(path=rel, tree=tree, source=source)
        covered = _suppressions(source)
        for rule in rules:
            if not rule.applies_to(rel):
                continue
            for finding in rule.check(module):
                if _suppressed(finding, covered):
                    suppressed.append(finding)
                else:
                    findings.append(finding)

    def key(f: Finding) -> Tuple[str, int, int, str]:
        return (f.path, f.line, f.col, f.rule)

    return LintResult(
        findings=sorted(findings, key=key),
        suppressed=sorted(suppressed, key=key),
        files=len(files),
        root=root,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    by_rule: Dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    tally = ", ".join(f"{code} x{count}" for code, count in sorted(by_rule.items()))
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s) in {result.files} file(s)"
            + (f" [{tally}]" if tally else "")
            + (
                f"; {len(result.suppressed)} suppressed"
                if result.suppressed
                else ""
            )
        )
    else:
        lines.append(
            f"clean: {result.files} file(s), 0 findings"
            + (f", {len(result.suppressed)} suppressed" if result.suppressed else "")
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    def row(finding: Finding) -> Dict[str, Any]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
        }

    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "files": result.files,
        "findings": [row(f) for f in result.findings],
        "suppressed": [row(f) for f in result.suppressed],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def rule_catalog() -> str:
    """The human-readable rule catalog (``repro lint --rules``)."""
    blocks = []
    for cls in REGISTRY:
        scope = (
            ", ".join(cls.default_include)
            if cls.default_include
            else "all checked paths (narrow via [tool.repro.lint.%s] include)" % cls.code
        )
        blocks.append(
            "\n".join(
                [
                    f"{cls.code} ({cls.name}) — {cls.summary}",
                    f"  why:   {cls.rationale}",
                    f"  fix:   {cls.fix}",
                    f"  scope: {scope}",
                ]
            )
        )
    return "\n\n".join(blocks)
