"""The ``repro lint`` engine: discovery, config, suppressions, output.

Wiring around the rule catalog (:mod:`repro.analysis.lint.rules`) and
the cross-file contract rules (:mod:`repro.analysis.lint.contracts`):

* **Two-pass run** — pass 1 walks the requested paths, parses each
  ``.py`` file once, and hands the shared AST to every applicable
  per-file rule; pass 2 assembles the parsed modules into a
  :class:`~repro.analysis.lint.project.ProjectModel` and runs the
  contract rules (CACHE001/WIRE003/CONC001/CONC002/DET005) over it.
  Contract findings anchor to real lines, so suppressions and the
  baseline apply to them unchanged.
* **Config** — ``[tool.repro.lint]`` in ``pyproject.toml`` provides the
  default path set, the findings-baseline location, per-rule tables
  (``include``/``exempt`` scoping plus rule-specific options), and
  named profiles (``[tool.repro.lint.profile.tests]``) that re-scope
  and disable rules for other tree regions. The whole table is
  *validated*: an unknown key or per-rule option raises
  :class:`LintConfigError` listing the valid choices — a typo must
  never silently disable a guard.
* **Baseline** — when ``baseline`` names a committed findings file,
  known findings warn instead of failing and stale entries are
  reported; ``repro lint --update-baseline`` rewrites it (see
  :mod:`repro.analysis.lint.baseline`).
* **Suppressions** — ``# repro: lint-ignore[RULE]`` (comma-separate for
  several rules, ``*`` for all) on the offending line, or on a comment
  line directly above it, moves matching findings into the suppressed
  list instead of the failing one. Suppressions are expected to carry a
  one-line justification after the bracket; unknown rule ids inside the
  bracket are themselves a finding (LINT000).
* **Output** — stable text (``path:line:col: CODE message``), JSON
  (schema version pinned by tests), SARIF 2.1.0 (``--sarif``, see
  :mod:`repro.analysis.lint.sarif`), and the rule catalog.
"""

from __future__ import annotations

import ast
import json
import os
import tomllib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.analysis.lint.contracts import (
    CONTRACT_REGISTRY,
    CONTRACTS_BY_CODE,
    ProjectRule,
    WireSchemaDriftRule,
    wire_schema_snapshot,
)
from repro.analysis.lint.project import ProjectModel
from repro.analysis.lint.rules import (
    REGISTRY,
    RULES_BY_CODE,
    SUPPRESS_RE,
    Finding,
    ModuleContext,
    Rule,
)
from repro.util import atomic_write

JSON_SCHEMA_VERSION = 2
"""Bumped whenever the JSON rendering changes shape (CI consumers key on it).

v2: added ``baselined`` (with justifications) and ``stale_baseline``.
"""

WIRE_BASELINE_FORMAT = 1
"""Shape version of the committed wire-schema baseline file."""

_SUPPRESS_RE = SUPPRESS_RE

ALL_RULES_BY_CODE: Dict[str, type] = {**RULES_BY_CODE, **CONTRACTS_BY_CODE}


class LintConfigError(ValueError):
    """A ``[tool.repro.lint]`` table that cannot mean what it says.

    Raised instead of silently ignoring: a typo'd key or option would
    otherwise disable a determinism guard without anyone noticing.
    """


@dataclass(frozen=True)
class LintProfile:
    """One named re-scoping of the rule set (``--profile NAME``)."""

    paths: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()


@dataclass
class LintConfig:
    """The resolved ``[tool.repro.lint]`` table."""

    paths: Tuple[str, ...] = ()
    baseline: Optional[str] = None
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    profiles: Dict[str, LintProfile] = field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, pyproject_path: str) -> "LintConfig":
        with open(pyproject_path, "rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("repro", {}).get("lint", {})
        return cls.from_table(table)

    @classmethod
    def from_table(cls, table: Mapping[str, Any]) -> "LintConfig":
        errors: List[str] = []
        paths: Tuple[str, ...] = ()
        baseline: Optional[str] = None
        rule_options: Dict[str, Dict[str, Any]] = {}
        profiles: Dict[str, LintProfile] = {}
        valid_keys = (
            "valid keys: paths, baseline, profile.<name>, or a rule table ("
            + ", ".join(sorted(ALL_RULES_BY_CODE))
            + ")"
        )
        for key, value in table.items():
            if key == "paths":
                paths = tuple(str(p) for p in value)
            elif key == "baseline":
                baseline = str(value)
            elif key == "profile":
                if not isinstance(value, Mapping):
                    errors.append(
                        "[tool.repro.lint.profile] must be a table of "
                        "named profiles"
                    )
                    continue
                for name, body in value.items():
                    profile, profile_errors = cls._parse_profile(name, body)
                    errors.extend(profile_errors)
                    if profile is not None:
                        profiles[name] = profile
            elif key in ALL_RULES_BY_CODE:
                if not isinstance(value, Mapping):
                    errors.append(
                        f"[tool.repro.lint.{key}] must be a table of options"
                    )
                    continue
                allowed = ALL_RULES_BY_CODE[key].option_keys
                unknown = sorted(set(value) - set(allowed))
                if unknown:
                    errors.append(
                        f"[tool.repro.lint.{key}]: unknown option(s) "
                        f"{', '.join(unknown)}; valid options for {key}: "
                        + ", ".join(allowed)
                    )
                    continue
                rule_options[key] = dict(value)
            else:
                errors.append(
                    f"unknown key {key!r} under [tool.repro.lint]; "
                    + valid_keys
                )
        if errors:
            raise LintConfigError("\n".join(errors))
        return cls(
            paths=paths,
            baseline=baseline,
            rule_options=rule_options,
            profiles=profiles,
        )

    @staticmethod
    def _parse_profile(
        name: str, body: Any
    ) -> Tuple[Optional[LintProfile], List[str]]:
        if not isinstance(body, Mapping):
            return None, [
                f"[tool.repro.lint.profile.{name}] must be a table"
            ]
        errors: List[str] = []
        unknown = sorted(set(body) - {"paths", "disable"})
        if unknown:
            errors.append(
                f"[tool.repro.lint.profile.{name}]: unknown option(s) "
                f"{', '.join(unknown)}; valid options: paths, disable"
            )
        disable = tuple(str(code) for code in body.get("disable", ()))
        bad_codes = sorted(set(disable) - set(ALL_RULES_BY_CODE))
        if bad_codes:
            errors.append(
                f"[tool.repro.lint.profile.{name}]: disable names unknown "
                f"rule(s) {', '.join(bad_codes)}; known rules: "
                + ", ".join(sorted(ALL_RULES_BY_CODE))
            )
        if errors:
            return None, errors
        return (
            LintProfile(
                paths=tuple(str(p) for p in body.get("paths", ())),
                disable=disable,
            ),
            [],
        )


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    suppressed: List[Finding]
    files: int
    root: str
    baselined: List[Tuple[Finding, BaselineEntry]] = field(
        default_factory=list
    )
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Baselined findings warn, stale entries nudge; only NEW findings fail."""
        return not self.findings

    def all_findings(self) -> List[Finding]:
        """New + baselined findings (the raw pre-baseline view)."""
        return sorted(
            self.findings + [f for f, _ in self.baselined], key=_finding_sort
        )


def load_config(root: str) -> LintConfig:
    """The config for ``root`` (its ``pyproject.toml``, or empty defaults).

    A missing pyproject means defaults; a *broken* one (bad TOML, unknown
    keys, unknown per-rule options) raises :class:`LintConfigError` —
    config typos must not silently run the linter unconfigured.
    """
    pyproject = os.path.join(root, "pyproject.toml")
    try:
        return LintConfig.from_pyproject(pyproject)
    except FileNotFoundError:
        return LintConfig()
    except tomllib.TOMLDecodeError as exc:
        raise LintConfigError(f"could not parse {pyproject}: {exc}") from exc


def discover(paths: Sequence[str], root: str) -> List[str]:
    """All ``.py`` files under the given paths (absolute, sorted, unique)."""
    out: Set[str] = set()
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                out.add(os.path.abspath(absolute))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for name in filenames:
                if name.endswith(".py"):
                    out.add(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(out)


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line suppressed rule codes.

    A trailing comment covers its own line; a standalone comment line
    covers the following line too (the conventional "reason above the
    offending statement" style).
    """
    covered: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        covered.setdefault(lineno, set()).update(codes)
        if line.lstrip().startswith("#"):
            covered.setdefault(lineno + 1, set()).update(codes)
    return covered


def _suppressed(finding: Finding, covered: Dict[int, Set[str]]) -> bool:
    codes = covered.get(finding.line, ())
    return finding.rule in codes or "*" in codes


def build_rules(
    config: LintConfig, disabled: Sequence[str] = ()
) -> Tuple[List[Rule], List[ProjectRule]]:
    """Instantiate both registries with the config's per-rule options.

    Returns ``(per_file_rules, contract_rules)``. LINT000 gets the full
    known-code set (per-file + contract codes) injected so it validates
    suppressions against everything the engine can actually suppress.
    """
    off = set(disabled)
    known_codes = sorted(ALL_RULES_BY_CODE)
    file_rules: List[Rule] = []
    for cls in REGISTRY:
        if cls.code in off:
            continue
        options = dict(config.rule_options.get(cls.code, {}))
        if cls.code == "LINT000":
            options.setdefault("known-codes", known_codes)
        file_rules.append(cls(options))
    contract_rules: List[ProjectRule] = [
        cls(config.rule_options.get(cls.code, {}))
        for cls in CONTRACT_REGISTRY
        if cls.code not in off
    ]
    return file_rules, contract_rules


def _finding_sort(f: Finding) -> Tuple[str, int, int, str]:
    return (f.path, f.line, f.col, f.rule)


def _parse_files(
    files: Sequence[str], root: str
) -> Tuple[List[ModuleContext], List[Finding], Dict[str, Dict[int, Set[str]]]]:
    """Parse every file once: (modules, syntax findings, suppression maps)."""
    modules: List[ModuleContext] = []
    syntax: List[Finding] = []
    covered_by_path: Dict[str, Dict[int, Set[str]]] = {}
    for absolute in files:
        rel = os.path.relpath(absolute, root).replace(os.sep, "/")
        try:
            with open(absolute, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=rel)
        except (OSError, SyntaxError, ValueError) as exc:
            syntax.append(
                Finding(
                    rule="SYNTAX",
                    path=rel,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        modules.append(ModuleContext(path=rel, tree=tree, source=source))
        covered_by_path[rel] = _suppressions(source)
    return modules, syntax, covered_by_path


def run_lint(
    paths: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
    config: Optional[LintConfig] = None,
    profile: Optional[str] = None,
) -> LintResult:
    """Lint ``paths`` (or the config's default path set) under ``root``.

    ``profile`` selects a named ``[tool.repro.lint.profile.<name>]``:
    its ``paths`` become the default target set and its ``disable`` list
    drops rules for the run. Baseline matching applies only to the
    default (profile-less) scope — a profile run is a different contract
    with its own clean expectation.
    """
    root = os.path.abspath(root or os.getcwd())
    if config is None:
        config = load_config(root)
    disabled: Tuple[str, ...] = ()
    default_paths = config.paths
    if profile is not None:
        selected = config.profiles.get(profile)
        if selected is None:
            known = ", ".join(sorted(config.profiles)) or "<none configured>"
            raise LintConfigError(
                f"unknown lint profile {profile!r}; configured profiles: {known}"
            )
        disabled = selected.disable
        default_paths = selected.paths or config.paths
    targets = list(paths) if paths else list(default_paths) or ["."]
    file_rules, contract_rules = build_rules(config, disabled)

    files = discover(targets, root)
    modules, findings, covered_by_path = _parse_files(files, root)
    suppressed: List[Finding] = []

    # Pass 1: per-file rules over each module in isolation.
    for module in modules:
        covered = covered_by_path[module.path]
        for rule in file_rules:
            if not rule.applies_to(module.path):
                continue
            for finding in rule.check(module):
                if _suppressed(finding, covered):
                    suppressed.append(finding)
                else:
                    findings.append(finding)

    # Pass 2: contract rules over the assembled project model. Findings
    # anchor to real lines, so in-source suppressions apply unchanged.
    project = ProjectModel(modules)
    for contract_rule in contract_rules:
        for finding in contract_rule.project_check(project, root):
            covered = covered_by_path.get(finding.path, {})
            if _suppressed(finding, covered):
                suppressed.append(finding)
            else:
                findings.append(finding)

    baselined: List[Tuple[Finding, BaselineEntry]] = []
    stale: List[BaselineEntry] = []
    if config.baseline and profile is None:
        try:
            entries = load_baseline(os.path.join(root, config.baseline))
        except ValueError as exc:
            raise LintConfigError(str(exc)) from exc
        findings, baselined, stale = apply_baseline(findings, entries)
        if paths:
            stale = []  # a partial run cannot judge what it did not scan

    return LintResult(
        findings=sorted(findings, key=_finding_sort),
        suppressed=sorted(suppressed, key=_finding_sort),
        files=len(files),
        root=root,
        baselined=sorted(baselined, key=lambda pair: _finding_sort(pair[0])),
        stale_baseline=stale,
    )


# ----------------------------------------------------------------------
# Baseline refresh entry points (CLI --update-baseline / --update-wire-baseline)
# ----------------------------------------------------------------------
def update_baseline(
    root: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> Tuple[str, int]:
    """Rewrite the findings baseline from a full default-scope run.

    Returns ``(path, entry_count)``. Justifications for entries that
    survive are carried forward; new entries get the TODO marker.
    """
    root = os.path.abspath(root or os.getcwd())
    if config is None:
        config = load_config(root)
    if not config.baseline:
        raise LintConfigError(
            "no findings baseline configured; set `baseline = "
            '".repro-lint-baseline.json"` under [tool.repro.lint]'
        )
    baseline_path = os.path.join(root, config.baseline)
    result = run_lint(root=root, config=config)
    raw = result.all_findings()
    try:
        previous = load_baseline(baseline_path)
    except ValueError:
        previous = []  # malformed file: rewrite it wholesale
    content = render_baseline(raw, previous)
    atomic_write(baseline_path, lambda h: h.write(content.encode("utf-8")))
    return baseline_path, len(raw)


def update_wire_baseline(
    root: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> Tuple[str, int]:
    """Re-snapshot every configured wire protocol into the schema baseline.

    Returns ``(path, protocol_count)``. Refuses a partial snapshot: if a
    configured protocol's declaring files are missing from the default
    scope, overwriting the committed baseline would erase its record.
    """
    root = os.path.abspath(root or os.getcwd())
    if config is None:
        config = load_config(root)
    options = config.rule_options.get("WIRE003", {})
    protocols = options.get("protocols", {})
    if not protocols:
        raise LintConfigError(
            "no wire protocols configured; add "
            "[tool.repro.lint.WIRE003.protocols.<name>] tables"
        )
    schema_path = os.path.join(
        root,
        options.get("schema-file", WireSchemaDriftRule.DEFAULT_SCHEMA_FILE),
    )
    targets = list(config.paths) or ["."]
    modules, _syntax, _covered = _parse_files(discover(targets, root), root)
    snapshot = wire_schema_snapshot(ProjectModel(modules), protocols)
    missing = sorted(set(protocols) - set(snapshot))
    if missing:
        raise LintConfigError(
            "cannot snapshot protocol(s) "
            + ", ".join(missing)
            + ": their declaring files are not under the configured lint paths"
        )
    payload = {"format": WIRE_BASELINE_FORMAT, "protocols": snapshot}
    content = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    atomic_write(schema_path, lambda h: h.write(content.encode("utf-8")))
    return schema_path, len(snapshot)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    for finding, entry in result.baselined:
        lines.append(
            f"{finding.render()} [baselined: {entry.justification}]"
        )
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"({entry.message!r} no longer occurs) — run "
            "`repro lint --update-baseline` to prune it"
        )
    by_rule: Dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    tally = ", ".join(f"{code} x{count}" for code, count in sorted(by_rule.items()))
    extras = ""
    if result.baselined:
        extras += f", {len(result.baselined)} baselined"
    if result.suppressed:
        extras += f", {len(result.suppressed)} suppressed"
    if result.stale_baseline:
        extras += f", {len(result.stale_baseline)} stale baseline entr" + (
            "y" if len(result.stale_baseline) == 1 else "ies"
        )
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s) in {result.files} file(s)"
            + (f" [{tally}]" if tally else "")
            + extras
        )
    else:
        lines.append(f"clean: {result.files} file(s), 0 findings" + extras)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    def row(finding: Finding) -> Dict[str, Any]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
        }

    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "files": result.files,
        "findings": [row(f) for f in result.findings],
        "baselined": [
            dict(row(f), justification=entry.justification)
            for f, entry in result.baselined
        ],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "message": entry.message,
                "justification": entry.justification,
            }
            for entry in result.stale_baseline
        ],
        "suppressed": [row(f) for f in result.suppressed],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif_result(result: LintResult) -> str:
    """The SARIF 2.1.0 document for one run (``repro lint --sarif``)."""
    from repro.analysis.lint.sarif import render_sarif

    return render_sarif(
        findings=result.findings,
        baselined=[f for f, _ in result.baselined],
        suppressed=result.suppressed,
        justifications={
            i: entry.justification
            for i, (_, entry) in enumerate(result.baselined)
        },
    )


def rule_catalog() -> str:
    """The human-readable rule catalog (``repro lint --rules``)."""
    blocks = []
    for cls in tuple(REGISTRY) + tuple(CONTRACT_REGISTRY):
        scope = (
            ", ".join(cls.default_include)
            if cls.default_include
            else "all checked paths (narrow via [tool.repro.lint.%s] include)" % cls.code
        )
        kind = "contract rule (cross-file)" if issubclass(
            cls, ProjectRule
        ) else "per-file rule"
        blocks.append(
            "\n".join(
                [
                    f"{cls.code} ({cls.name}) — {cls.summary}",
                    f"  kind:  {kind}",
                    f"  why:   {cls.rationale}",
                    f"  fix:   {cls.fix}",
                    f"  scope: {scope}",
                ]
            )
        )
    return "\n\n".join(blocks)
