"""Pass 2 of the two-pass analyzer: cross-file **contract rules**.

Where the per-file rules (:mod:`repro.analysis.lint.rules`) catch local
patterns, every rule here proves a *relationship between distant pieces
of code* — each one the static form of a contract violation this repo
has already lived through or is about to expose to third parties:

* **CACHE001** — cache-key completeness. PR 7 added ``fast_path`` /
  ``wire_traces_only`` to :class:`SessionSpec` and had to *remember* to
  fold them into ``content_key()`` by hand; forgetting would have
  aliased fast and precise sessions under one cache key and served
  wrong summaries forever. The rule inventories the spec dataclass's
  fields and requires each to be consumed by the key method or carry an
  explicit config exemption.
* **WIRE003** — wire-schema drift. The work-dir protocol's
  ``WIRE_FORMAT``, the session cache's ``_CACHE_FORMAT``, and the
  service store's ``PRAGMA user_version`` are bumped *by convention*
  when their payload shapes change. The rule fingerprints the declared
  fields of every wire-payload class (plus the service ``job_json``
  shape and the verdict-row column schema) into a committed baseline
  and fails when the fingerprint moves without the matching version
  constant moving with it.
* **CONC001** — check-then-use (TOCTOU) on filesystem paths. The
  work-dir protocol is safe *because* every transition is an atomic
  rename wrapped in EAFP ``try/except OSError``; an ``os.path.exists``
  probe followed by an ``open``/``rename`` on the same path reopens the
  race a pluggable Transport backend would hit first. Uses inside a
  ``try`` that catches ``OSError``/``FileNotFoundError`` — the
  sanctioned idiom — are exempt, as are ``os.replace`` and the
  ``repro.util.atomic_write`` helpers.
* **CONC002** — lock-consistency for shared mutable state. A class that
  owns a ``threading.Lock``/``RLock`` and touches an attribute under it
  in one method must not touch the same attribute lock-free in another
  (``__init__``, which runs before any thread exists, is excluded).
  This is what keeps service/executor threads honest around the SQLite
  job store.
* **DET005** — Detector protocol conformance. Every class registered in
  ``DETECTOR_CLASSES`` must resolve ``fit(self, golden)`` and
  ``score(self, suspect)`` (directly or via bases), expose a string
  ``name``, and return :class:`Verdict` constructions from ``score`` —
  so a drifting detector fails lint instead of failing a sweep at
  runtime.

Contract rules subclass :class:`ProjectRule` and run once per lint run
against the :class:`~repro.analysis.lint.project.ProjectModel`; their
findings anchor to real file/line locations, so the ordinary
suppression and baseline machinery applies unchanged.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Type

from repro.analysis.lint.project import ClassInfo, ProjectModel
from repro.analysis.lint.rules import Finding, Rule, _dotted


class ProjectRule(Rule):
    """A rule that checks the whole project model instead of one module."""

    def check(self, module) -> List[Finding]:  # pragma: no cover - not used
        return []

    def project_check(self, project: ProjectModel, root: str) -> List[Finding]:
        raise NotImplementedError

    def node_finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _split_ref(ref: str) -> Tuple[str, str]:
    """Parse a ``path::Name`` contract reference from the config."""
    path, _, name = ref.partition("::")
    return path, name


# ----------------------------------------------------------------------
# CACHE001 — cache-key completeness
# ----------------------------------------------------------------------
class CacheKeyCompletenessRule(ProjectRule):
    code = "CACHE001"
    name = "cache-key-completeness"
    summary = "every session-spec field must be consumed by the content key or be exempt"
    rationale = (
        "SessionSpec.content_key() is the session cache's identity: any field "
        "that changes the simulated outcome but is missing from the digest "
        "aliases two different sessions under one key, and the cache serves "
        "the wrong summary forever after. PR 7 had to remember to add "
        "fast_path/wire_traces_only by hand; this rule makes forgetting a "
        "lint failure. Fields that are presentation or policy (label, "
        "cacheable) carry an explicit exemption in [tool.repro.lint.CACHE001]."
    )
    fix = (
        "fold the field into content_key(), or add it to the CACHE001 "
        "exempt-fields config with a justification comment"
    )
    option_keys = ("include", "exempt", "spec-class", "key-method", "exempt-fields")

    def project_check(self, project: ProjectModel, root: str) -> List[Finding]:
        spec_name = self.options.get("spec-class", "SessionSpec")
        key_method = self.options.get("key-method", "content_key")
        exempt = set(self.options.get("exempt-fields", ("label", "cacheable")))
        info = project.find_class(spec_name)
        if info is None:
            return []  # partial run: the spec class was not parsed this run
        findings: List[Finding] = []
        resolved = project.resolve_method(info, key_method)
        if resolved is None:
            return [
                self.node_finding(
                    info.path,
                    info.node,
                    f"{spec_name} defines no {key_method}() — the cache has "
                    "no content identity for its sessions",
                )
            ]
        _owner, method = resolved
        consumed = {
            node.attr
            for node in ast.walk(method)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        }
        for field in info.fields:
            if field.name in consumed:
                if field.name in exempt:
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=info.path,
                            line=field.line,
                            col=field.col,
                            message=(
                                f"{spec_name}.{field.name} is exempted from "
                                f"{key_method}() in the CACHE001 config but IS "
                                "consumed by it — remove the stale exemption"
                            ),
                        )
                    )
                continue
            if field.name in exempt:
                continue
            findings.append(
                Finding(
                    rule=self.code,
                    path=info.path,
                    line=field.line,
                    col=field.col,
                    message=(
                        f"{spec_name}.{field.name} is not consumed by "
                        f"{key_method}(): two sessions differing only in "
                        f"{field.name} would share one cache key (the PR 7 "
                        "fast_path aliasing class). Fold it into the digest "
                        "or exempt it with a justification"
                    ),
                )
            )
        return findings


# ----------------------------------------------------------------------
# WIRE003 — wire-schema drift vs. version constants
# ----------------------------------------------------------------------
class WireSchemaDriftRule(ProjectRule):
    code = "WIRE003"
    name = "wire-schema-drift"
    summary = "wire-payload shapes changed without bumping the protocol's version constant"
    rationale = (
        "Every pickled/stored payload family carries a version constant "
        "(WIRE_FORMAT for the work dir, _CACHE_FORMAT for the session cache, "
        "SERVICE_SCHEMA_VERSION for the job store) so skewed hosts fail loud "
        "instead of deserializing garbage — but the bump itself is enforced "
        "only by changelog discipline. This rule fingerprints each protocol's "
        "declared shapes (dataclass fields, the job_json dict shape, the "
        "verdict-row column tuple) into a committed baseline "
        "(.repro-wire-schema.json) and fails when the fingerprint moves while "
        "the version constant stands still."
    )
    fix = (
        "bump the protocol's version constant, then refresh the committed "
        "baseline with `repro lint --update-wire-baseline`"
    )
    option_keys = ("include", "exempt", "schema-file", "protocols")

    DEFAULT_SCHEMA_FILE = ".repro-wire-schema.json"

    def project_check(self, project: ProjectModel, root: str) -> List[Finding]:
        protocols = self.options.get("protocols", {})
        if not protocols:
            return []
        schema_path = os.path.join(
            root, self.options.get("schema-file", self.DEFAULT_SCHEMA_FILE)
        )
        recorded = load_wire_baseline(schema_path)
        findings: List[Finding] = []
        for name in sorted(protocols):
            findings.extend(
                self._check_protocol(
                    project, name, protocols[name], recorded.get(name)
                )
            )
        return findings

    def _check_protocol(
        self,
        project: ProjectModel,
        name: str,
        spec: Mapping[str, Any],
        recorded: Optional[Mapping[str, Any]],
    ) -> List[Finding]:
        snapshot = snapshot_protocol(project, spec)
        if snapshot is None:
            return []  # partial run: some declaring file was not parsed
        version_path, version_name = _split_ref(str(spec.get("version", "")))
        const = project.find_constant(version_name, path=version_path)
        if const is None:
            module = project.modules.get(version_path)
            anchor = module.tree if module is not None else None
            return [
                Finding(
                    rule=self.code,
                    path=version_path,
                    line=getattr(anchor, "lineno", 1) if anchor else 1,
                    col=0,
                    message=(
                        f"protocol {name!r}: version constant {version_name} "
                        f"not found in {version_path} — the wire format has "
                        "no fail-loud version to bump"
                    ),
                )
            ]
        if recorded is None:
            return [
                Finding(
                    rule=self.code,
                    path=const.path,
                    line=const.line,
                    col=const.col,
                    message=(
                        f"protocol {name!r} has no committed wire-schema "
                        "baseline; run `repro lint --update-wire-baseline` "
                        "and commit the schema file"
                    ),
                )
            ]
        same_fp = snapshot["fingerprint"] == recorded.get("fingerprint")
        same_version = snapshot["version"] == recorded.get("version")
        if same_fp and same_version:
            return []
        if same_fp:
            return [
                Finding(
                    rule=self.code,
                    path=const.path,
                    line=const.line,
                    col=const.col,
                    message=(
                        f"protocol {name!r}: {version_name} moved "
                        f"({recorded.get('version')!r} -> {const.value!r}) "
                        "but the committed baseline still records the old "
                        "version; refresh it with "
                        "`repro lint --update-wire-baseline`"
                    ),
                )
            ]
        if not same_version:
            return [
                Finding(
                    rule=self.code,
                    path=const.path,
                    line=const.line,
                    col=const.col,
                    message=(
                        f"protocol {name!r}: wire schema changed and "
                        f"{version_name} was bumped "
                        f"({recorded.get('version')!r} -> {const.value!r}); "
                        "refresh the committed baseline with "
                        "`repro lint --update-wire-baseline` so the next "
                        "drift is caught"
                    ),
                )
            ]
        # The real bug class: schema moved, version did not.
        findings: List[Finding] = []
        old_declares = dict(recorded.get("declares", {}))
        for entry, lines in sorted(snapshot["declares"].items()):
            old = old_declares.pop(entry, None)
            if old == lines:
                continue
            anchor = self._anchor_for(project, spec, entry)
            change = "changed" if old is not None else "was added to the wire"
            findings.append(
                Finding(
                    rule=self.code,
                    path=anchor[0],
                    line=anchor[1],
                    col=anchor[2],
                    message=(
                        f"protocol {name!r}: declared wire shape of {entry} "
                        f"{change} but {version_name} is still "
                        f"{const.value!r} in {const.path} — a skewed host "
                        "would deserialize the new shape silently; bump the "
                        "version and refresh the baseline "
                        "(`repro lint --update-wire-baseline`)"
                    ),
                )
            )
        for entry in sorted(old_declares):
            findings.append(
                Finding(
                    rule=self.code,
                    path=const.path,
                    line=const.line,
                    col=const.col,
                    message=(
                        f"protocol {name!r}: {entry} left the wire schema but "
                        f"{version_name} is still {const.value!r}; bump it "
                        "and refresh the baseline"
                    ),
                )
            )
        return findings

    @staticmethod
    def _anchor_for(
        project: ProjectModel, spec: Mapping[str, Any], entry: str
    ) -> Tuple[str, int, int]:
        """Best-effort source location for one declared entry."""
        for ref in spec.get("classes", ()):
            path, name = _split_ref(ref)
            if f"class {name}" == entry:
                info = project.find_class(name, path=path)
                if info is not None:
                    return info.path, info.line, info.node.col_offset
        for ref in spec.get("functions", ()):
            path, name = _split_ref(ref)
            if f"{name}()" == entry:
                found = project.find_function(name, path=path)
                if found is not None:
                    return found[0], found[1].lineno, found[1].col_offset
        for ref in spec.get("constants", ()):
            path, name = _split_ref(ref)
            if name == entry:
                const = project.find_constant(name, path=path)
                if const is not None:
                    return const.path, const.line, const.col
        version_path, _ = _split_ref(str(spec.get("version", "")))
        return version_path, 1, 0


def snapshot_protocol(
    project: ProjectModel, spec: Mapping[str, Any]
) -> Optional[Dict[str, Any]]:
    """One protocol's current declared shapes + fingerprint.

    Returns ``None`` when any referenced file is absent from the model —
    the partial-run guard: a fingerprint over half the declarations would
    "drift" against the committed full one and spray false findings.
    """
    refs = (
        [str(spec.get("version", ""))]
        + [str(r) for r in spec.get("classes", ())]
        + [str(r) for r in spec.get("functions", ())]
        + [str(r) for r in spec.get("constants", ())]
    )
    for ref in refs:
        path, _ = _split_ref(ref)
        if path and path not in project.modules:
            return None

    declares: Dict[str, List[str]] = {}
    for ref in spec.get("classes", ()):
        path, name = _split_ref(str(ref))
        info = project.find_class(name, path=path)
        if info is not None:
            declares[f"class {name}"] = info.field_lines()
    for ref in spec.get("functions", ()):
        path, name = _split_ref(str(ref))
        found = project.find_function(name, path=path)
        if found is not None:
            declares[f"{name}()"] = _dict_shape(found[1])
    for ref in spec.get("constants", ()):
        path, name = _split_ref(str(ref))
        const = project.find_constant(name, path=path)
        if const is not None:
            value = const.value
            items = list(value) if isinstance(value, (list, tuple)) else [value]
            declares[name] = [repr(item) for item in items]

    version_path, version_name = _split_ref(str(spec.get("version", "")))
    const = project.find_constant(version_name, path=version_path)
    digest = hashlib.sha256(
        repr(sorted(declares.items())).encode()
    ).hexdigest()
    return {
        "version": const.value if const is not None else None,
        "fingerprint": digest,
        "declares": declares,
    }


def _dict_shape(func: ast.FunctionDef) -> List[str]:
    """The constant keys of the dict literal(s) a shape function returns."""
    keys: List[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant):
                    keys.append(repr(key.value))
    return keys or ["<no dict-literal return>"]


def wire_schema_snapshot(
    project: ProjectModel, protocols: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Current snapshots for every configured protocol (baseline refresh)."""
    out: Dict[str, Dict[str, Any]] = {}
    for name in sorted(protocols):
        snapshot = snapshot_protocol(project, protocols[name])
        if snapshot is not None:
            out[name] = snapshot
    return out


def load_wire_baseline(path: str) -> Dict[str, Any]:
    """The committed wire-schema baseline ({} when absent/unreadable)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    protocols = data.get("protocols")
    return dict(protocols) if isinstance(protocols, dict) else {}


# ----------------------------------------------------------------------
# CONC001 — check-then-use (TOCTOU) on filesystem paths
# ----------------------------------------------------------------------
_GUARD_CALLS = {
    "os.path.exists",
    "os.path.isfile",
    "os.path.isdir",
    "os.path.lexists",
}
_USE_CALLS = {
    "open": (0,),
    "io.open": (0,),
    "os.rename": (0, 1),
    "os.unlink": (0,),
    "os.remove": (0,),
    "os.rmdir": (0,),
}
_EAFP_EXCEPTIONS = {
    "OSError",
    "IOError",
    "FileNotFoundError",
    "FileExistsError",
    "PermissionError",
    "NotADirectoryError",
    "IsADirectoryError",
    "Exception",
    "BaseException",
}


class ToctouRule(ProjectRule):
    code = "CONC001"
    name = "check-then-use"
    summary = "exists/listdir probe followed by open/rename/unlink on the same path"
    rationale = (
        "The work-dir protocol stays race-free because it never trusts a "
        "stat: claims are atomic renames and every filesystem use is wrapped "
        "in EAFP try/except OSError, so a concurrent worker winning the race "
        "degrades to a harmless miss. An os.path.exists() probe followed by "
        "an open()/os.rename()/os.unlink() on the same path re-opens the "
        "window — the file can vanish or appear between check and use, which "
        "is exactly the class of bug a third-party Transport backend would "
        "introduce first. Uses inside a try that catches OSError/"
        "FileNotFoundError, plus os.replace and the repro.util.atomic_write "
        "helpers, are the sanctioned idioms and are not flagged."
    )
    fix = (
        "drop the probe and handle the failure: try/except FileNotFoundError "
        "(EAFP), or route the write through os.replace/atomic_write"
    )

    def project_check(self, project: ProjectModel, root: str) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(project.modules):
            if not self.applies_to(path):
                continue
            module = project.modules[path]
            imports = project.imports[path]
            for scope in self._scopes(module.tree):
                self._check_scope(path, scope, imports, findings)
        return findings

    @staticmethod
    def _scopes(tree: ast.Module):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_scope(
        self,
        path: str,
        scope: ast.AST,
        imports: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        guards: Dict[str, Tuple[int, str]] = {}
        listdir_vars: Dict[str, int] = {}

        def catches_eafp(handler: ast.ExceptHandler) -> bool:
            if handler.type is None:
                return True
            elts = (
                handler.type.elts
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            for el in elts:
                name = el.id if isinstance(el, ast.Name) else getattr(el, "attr", "")
                if name in _EAFP_EXCEPTIONS:
                    return True
            return False

        def expr_key(node: ast.AST) -> Optional[str]:
            try:
                return ast.unparse(node)
            except Exception:
                return None

        def is_listdir(node: ast.AST) -> bool:
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func, imports)
                if dotted == "os.listdir":
                    return True
                # sorted(os.listdir(...)) — the common deterministic form.
                if dotted == "sorted" and node.args:
                    return is_listdir(node.args[0])
            return False

        def handle_call(node: ast.Call, protected: bool) -> None:
            dotted = _dotted(node.func, imports)
            if dotted in _GUARD_CALLS and node.args:
                key = expr_key(node.args[0])
                if key is not None:
                    guards.setdefault(key, (node.lineno, dotted))
                return
            arg_indexes = _USE_CALLS.get(dotted or "")
            if arg_indexes is None or protected:
                return
            for index in arg_indexes:
                if index >= len(node.args):
                    continue
                arg = node.args[index]
                key = expr_key(arg)
                if key is not None and key in guards:
                    guard_line, guard_call = guards[key]
                    findings.append(
                        self.node_finding(
                            path,
                            node,
                            f"{dotted}({key}) after {guard_call}() on the "
                            f"same path at line {guard_line} is check-then-"
                            "use (TOCTOU): the path can change between the "
                            "probe and the use. Use try/except "
                            "FileNotFoundError or the atomic "
                            "os.replace/atomic_write idiom",
                        )
                    )
                    return
                for inner in ast.walk(arg):
                    if isinstance(inner, ast.Name) and inner.id in listdir_vars:
                        findings.append(
                            self.node_finding(
                                path,
                                node,
                                f"{dotted}() on {inner.id!r} from the "
                                f"os.listdir() at line "
                                f"{listdir_vars[inner.id]} is check-then-use "
                                "(TOCTOU): a listed entry can vanish before "
                                "the use. Wrap the use in try/except OSError "
                                "(the work-dir idiom) or use os.replace",
                            )
                        )
                        return

        def visit(node: ast.AST, protected: bool) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) and node is not scope:
                return  # nested scopes are analyzed on their own
            if isinstance(node, ast.Try):
                body_protected = protected or any(
                    catches_eafp(h) for h in node.handlers
                )
                for child in node.body:
                    visit(child, body_protected)
                for handler in node.handlers:
                    for child in handler.body:
                        visit(child, protected)
                for child in node.orelse + node.finalbody:
                    visit(child, protected)
                return
            if isinstance(node, ast.For) and is_listdir(node.iter):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        listdir_vars[target.id] = node.lineno
            elif isinstance(node, ast.Assign) and is_listdir(node.value):
                for target_node in node.targets:
                    for target in ast.walk(target_node):
                        if isinstance(target, ast.Name):
                            listdir_vars[target.id] = node.lineno
            if isinstance(node, ast.Call):
                handle_call(node, protected)
            for child in ast.iter_child_nodes(node):
                visit(child, protected)

        for child in ast.iter_child_nodes(scope):
            visit(child, False)


# ----------------------------------------------------------------------
# CONC002 — lock-consistency for shared mutable state
# ----------------------------------------------------------------------
class LockConsistencyRule(ProjectRule):
    code = "CONC002"
    name = "lock-consistency"
    summary = "an attribute guarded by the class lock elsewhere is accessed lock-free"
    rationale = (
        "The job store's contract is one connection behind one lock: "
        "submissions arrive on request threads while the executor thread "
        "writes progress. The dangerous edit is not forgetting locks "
        "entirely — it is adding one new method that touches self._conn "
        "without `with self._lock`. This rule infers, per class owning a "
        "threading.Lock/RLock, the set of attributes accessed under that "
        "lock, and flags any access of those same attributes outside it "
        "(RacerD-style consistency checking). __init__ is excluded: it runs "
        "before the object is visible to any other thread."
    )
    fix = "wrap the access in `with self._lock:` (or confine the state to one thread)"

    _LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}

    def project_check(self, project: ProjectModel, root: str) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(project.modules):
            if not self.applies_to(path):
                continue
            module = project.modules[path]
            imports = project.imports[path]
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    self._check_class(path, node, imports, findings)
        return findings

    def _check_class(
        self,
        path: str,
        cls: ast.ClassDef,
        imports: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        method_names = {m.name for m in methods}
        lock_attrs: Set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _dotted(node.value.func, imports) in self._LOCK_FACTORIES
                ):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            lock_attrs.add(target.attr)
        if not lock_attrs:
            return

        # (attr, locked, node, method-name) for every self.<attr> touch.
        accesses: List[Tuple[str, bool, ast.Attribute, str]] = []

        def is_lock_expr(node: ast.AST) -> bool:
            return (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in lock_attrs
            )

        def visit(node: ast.AST, locked: bool, method_name: str) -> None:
            if isinstance(node, ast.With) and any(
                is_lock_expr(item.context_expr) for item in node.items
            ):
                for child in node.body:
                    visit(child, True, method_name)
                return
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr not in lock_attrs
                and node.attr not in method_names
            ):
                accesses.append((node.attr, locked, node, method_name))
            for child in ast.iter_child_nodes(node):
                visit(child, locked, method_name)

        for method in methods:
            for child in method.body:
                visit(child, False, method.name)

        guarded = {attr for attr, locked, _, _ in accesses if locked}
        lock_name = sorted(lock_attrs)[0]
        for attr, locked, node, method_name in accesses:
            if locked or attr not in guarded or method_name == "__init__":
                continue
            findings.append(
                self.node_finding(
                    path,
                    node,
                    f"self.{attr} is accessed under `with self.{lock_name}` "
                    f"elsewhere in {cls.name} but {method_name}() touches it "
                    "without holding the lock — a service/executor thread "
                    "race on shared state",
                )
            )


# ----------------------------------------------------------------------
# DET005 — Detector protocol conformance
# ----------------------------------------------------------------------
class DetectorConformanceRule(ProjectRule):
    code = "DET005"
    name = "detector-conformance"
    summary = "a registered detector drifted from the fit/score/Verdict protocol"
    rationale = (
        "The sweep engine treats every entry of DETECTOR_CLASSES as "
        "interchangeable: fit(golden) then score(suspect) -> Verdict, with a "
        "string name keying rows and ScoreSpec rebuilds on worker hosts. A "
        "detector whose signature drifts, loses its name, or returns a "
        "non-Verdict fails at sweep time on whichever host happens to score "
        "it — this rule fails it at lint time instead, before it ships in a "
        "ScoreSpec."
    )
    fix = (
        "give the detector fit(self, golden) / score(self, suspect), a "
        "string `name` class attribute, and return Verdict(...) from score()"
    )
    option_keys = ("include", "exempt", "registry", "verdict-class")

    DEFAULT_REGISTRY = "src/repro/detection/protocol.py::DETECTOR_CLASSES"

    def project_check(self, project: ProjectModel, root: str) -> List[Finding]:
        registry_path, registry_name = _split_ref(
            self.options.get("registry", self.DEFAULT_REGISTRY)
        )
        verdict_name = self.options.get("verdict-class", "Verdict")
        module = project.modules.get(registry_path)
        if module is None:
            return []  # partial run
        registry = self._registry_values(module.tree, registry_name)
        if registry is None:
            return []
        findings: List[Finding] = []
        for class_name, node in registry:
            info = project.find_class(class_name)
            if info is None:
                findings.append(
                    self.node_finding(
                        registry_path,
                        node,
                        f"{registry_name} registers {class_name}, which is "
                        "not defined anywhere in the linted project",
                    )
                )
                continue
            findings.extend(self._check_detector(project, info, verdict_name))
        return findings

    @staticmethod
    def _registry_values(
        tree: ast.Module, registry_name: str
    ) -> Optional[List[Tuple[str, ast.AST]]]:
        for node in tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not (isinstance(target, ast.Name) and target.id == registry_name):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                return None
            out = []
            for entry in value.values:
                if isinstance(entry, ast.Name):
                    out.append((entry.id, entry))
            return out
        return None

    def _check_detector(
        self, project: ProjectModel, info: ClassInfo, verdict_name: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        for method_name, arg_label in (("fit", "golden"), ("score", "suspect")):
            resolved = project.resolve_method(info, method_name)
            if resolved is None:
                findings.append(
                    self.node_finding(
                        info.path,
                        info.node,
                        f"detector {info.name} defines no {method_name}() "
                        "(directly or via its bases) — it cannot satisfy the "
                        "Detector protocol",
                    )
                )
                continue
            owner, method = resolved
            positional = len(method.args.posonlyargs) + len(method.args.args)
            required_kw = sum(
                1
                for arg, default in zip(
                    method.args.kwonlyargs, method.args.kw_defaults
                )
                if default is None
            )
            if positional != 2 or required_kw:
                findings.append(
                    self.node_finding(
                        owner.path,
                        method,
                        f"{info.name}.{method_name}() must take exactly "
                        f"(self, {arg_label}) — the sweep engine calls every "
                        "registered detector through that one shape",
                    )
                )
            if method_name == "score":
                findings.extend(
                    self._check_score_returns(info, owner, method, verdict_name)
                )
        if not self._has_name_attr(project, info):
            findings.append(
                self.node_finding(
                    info.path,
                    info.node,
                    f"detector {info.name} has no string `name` class "
                    "attribute — verdict rows and ScoreSpec entries key on it",
                )
            )
        return findings

    def _check_score_returns(
        self,
        info: ClassInfo,
        owner: ClassInfo,
        method: ast.FunctionDef,
        verdict_name: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(method):
            if not isinstance(node, ast.Return):
                continue
            value = node.value
            ok = (
                isinstance(value, ast.Call)
                and (
                    (isinstance(value.func, ast.Name) and value.func.id == verdict_name)
                    or (
                        isinstance(value.func, ast.Attribute)
                        and value.func.attr == verdict_name
                    )
                )
            )
            if not ok:
                findings.append(
                    self.node_finding(
                        owner.path,
                        node,
                        f"{info.name}.score() must return a {verdict_name}"
                        "(...) construction — the sweep serializes verdicts "
                        "straight into rows and wire payloads",
                    )
                )
        return findings

    def _has_name_attr(self, project: ProjectModel, info: ClassInfo) -> bool:
        seen: Set[str] = set()
        queue = [info]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            for item in current.node.body:
                targets: List[ast.AST] = []
                if isinstance(item, ast.Assign):
                    targets = list(item.targets)
                elif isinstance(item, ast.AnnAssign) and item.value is not None:
                    targets = [item.target]
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ) and item.target.id == "name":
                    # `name: str` — the protocol's own declaration form.
                    return True
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == "name":
                        return True
            for base in current.bases:
                base_info = project.find_class(base)
                if base_info is not None:
                    queue.append(base_info)
        return False


CONTRACT_REGISTRY: Tuple[Type[ProjectRule], ...] = (
    CacheKeyCompletenessRule,
    WireSchemaDriftRule,
    ToctouRule,
    LockConsistencyRule,
    DetectorConformanceRule,
)

CONTRACTS_BY_CODE: Dict[str, Type[ProjectRule]] = {
    cls.code: cls for cls in CONTRACT_REGISTRY
}
