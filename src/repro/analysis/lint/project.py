"""Pass 1 of the two-pass analyzer: the cross-file project model.

The per-file rules (:mod:`repro.analysis.lint.rules`) see one AST at a
time, which is exactly the wrong granularity for the bug classes that
actually bit this repo: a ``SessionSpec`` field added in one hunk and
forgotten by ``content_key()`` three hundred lines later, a wire-payload
dataclass growing a field without the ``WIRE_FORMAT`` bump that lives in
a different constant, a detector registered in ``DETECTOR_CLASSES``
whose ``score()`` drifted from the :class:`~repro.detection.protocol.Detector`
protocol. Those are *cross-file contracts*, and checking them needs a
project-wide view.

:class:`ProjectModel` is that view, built once per lint run from the
already-parsed :class:`~repro.analysis.lint.rules.ModuleContext` list:

* **class index** — every ``ClassDef`` in the project as a
  :class:`ClassInfo`: declared (annotated) fields in declaration order,
  methods, base-class names, and location;
* **constant index** — every module-level ``NAME = <literal>``
  assignment, so contract rules can read version constants
  (``WIRE_FORMAT``, ``_CACHE_FORMAT``, ``PRAGMA user_version`` mirrors)
  and schema tuples (``CSV_COLUMNS``) statically;
* **function index** — module-level functions by name (``job_json`` and
  friends);
* **per-module import maps** — the same local-name → dotted-origin
  resolution the per-file rules use, precomputed once.

Everything is resolved by *simple name* with the defining module
tracked, mirroring how this codebase actually links (one canonical
definition per payload/contract class). Lookups are deliberately
lenient: a partial lint run (``repro lint some_file.py``) yields a
partial model, and contract rules treat "not in the model" as "not my
business this run" rather than inventing findings about code that was
never read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.lint.rules import ModuleContext, _walk_with_imports


@dataclass(frozen=True)
class FieldInfo:
    """One annotated field declaration (``name: Annotation [= default]``)."""

    name: str
    annotation: str
    has_default: bool
    line: int
    col: int

    def render(self) -> str:
        """The canonical one-line form used in wire-schema fingerprints."""
        suffix = " = ..." if self.has_default else ""
        return f"{self.name}: {self.annotation}{suffix}"


@dataclass
class ClassInfo:
    """One class definition as the contract rules see it."""

    name: str
    path: str
    node: ast.ClassDef
    bases: Tuple[str, ...]
    fields: Tuple[FieldInfo, ...]
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def line(self) -> int:
        return self.node.lineno

    def field_lines(self) -> List[str]:
        """The declared-field shape, declaration order preserved.

        Order is part of the fingerprint on purpose: reordering dataclass
        fields changes positional construction and pickled tuple order.
        """
        return [f.render() for f in self.fields]


@dataclass(frozen=True)
class ConstantInfo:
    """One module-level ``NAME = <literal>`` binding."""

    name: str
    path: str
    value: object
    line: int
    col: int


def _literal(node: ast.AST) -> Tuple[bool, object]:
    """Evaluate a literal expression; ``(False, None)`` when not literal."""
    try:
        return True, ast.literal_eval(node)
    except (ValueError, SyntaxError, TypeError, MemoryError):
        return False, None


def _class_info(path: str, node: ast.ClassDef) -> ClassInfo:
    bases = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
    fields: List[FieldInfo] = []
    methods: Dict[str, ast.FunctionDef] = {}
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            fields.append(
                FieldInfo(
                    name=item.target.id,
                    annotation=ast.unparse(item.annotation),
                    has_default=item.value is not None,
                    line=item.lineno,
                    col=item.col_offset,
                )
            )
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(item, ast.FunctionDef):
                methods[item.name] = item
    return ClassInfo(
        name=node.name,
        path=path,
        node=node,
        bases=tuple(bases),
        fields=tuple(fields),
        methods=methods,
    )


class ProjectModel:
    """The whole lint run's parsed modules, indexed for contract rules."""

    def __init__(self, modules: List[ModuleContext]) -> None:
        self.modules: Dict[str, ModuleContext] = {m.path: m for m in modules}
        self.imports: Dict[str, Dict[str, str]] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.constants: Dict[str, List[ConstantInfo]] = {}
        self.functions: Dict[str, List[Tuple[str, ast.FunctionDef]]] = {}
        for module in modules:
            self.imports[module.path] = _walk_with_imports(module.tree)
            self._index_module(module)

    def _index_module(self, module: ModuleContext) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                info = _class_info(module.path, node)
                self.classes.setdefault(node.name, []).append(info)
        # Constants and functions are *top-level only*: version constants
        # and wire-shape functions are module API, not incidental locals.
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions.setdefault(node.name, []).append(
                    (module.path, node)
                )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    ok, value = _literal(node.value)
                    if ok:
                        self.constants.setdefault(target.id, []).append(
                            ConstantInfo(
                                name=target.id,
                                path=module.path,
                                value=value,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    ok, value = _literal(node.value)
                    if ok:
                        self.constants.setdefault(node.target.id, []).append(
                            ConstantInfo(
                                name=node.target.id,
                                path=module.path,
                                value=value,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def find_class(
        self, name: str, path: Optional[str] = None
    ) -> Optional[ClassInfo]:
        """The class named ``name`` (optionally pinned to one module).

        With several same-named definitions and no ``path`` hint, the one
        under ``src/`` wins (fixture trees in tests shadow nothing).
        """
        infos = self.classes.get(name, [])
        if path is not None:
            for info in infos:
                if info.path == path:
                    return info
            return None
        if not infos:
            return None
        for info in infos:
            if info.path.startswith("src/"):
                return info
        return infos[0]

    def find_constant(
        self, name: str, path: Optional[str] = None
    ) -> Optional[ConstantInfo]:
        infos = self.constants.get(name, [])
        if path is not None:
            for info in infos:
                if info.path == path:
                    return info
            return None
        return infos[0] if infos else None

    def find_function(
        self, name: str, path: Optional[str] = None
    ) -> Optional[Tuple[str, ast.FunctionDef]]:
        entries = self.functions.get(name, [])
        if path is not None:
            for entry in entries:
                if entry[0] == path:
                    return entry
            return None
        return entries[0] if entries else None

    def resolve_method(
        self, info: ClassInfo, method: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """Find ``method`` on the class or (breadth-first) its base classes.

        Base names resolve by simple name across the whole model — the
        linker discipline this codebase actually uses. Cycles and
        unresolvable bases (``Protocol``, ABCs from the stdlib) are
        skipped silently.
        """
        seen = set()
        queue = [info]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            if method in current.methods:
                return current, current.methods[method]
            for base in current.bases:
                base_info = self.find_class(base)
                if base_info is not None:
                    queue.append(base_info)
        return None
