"""The ``repro lint`` rule catalog.

Every rule here guards an invariant the repo's byte-identical-verdict
contract actually depends on — each one is the static form of a parity
bug that has already happened (or nearly happened) in this codebase:

* **DET001** — builtin ``hash()`` is randomized per process
  (``PYTHONHASHSEED``); PR 2 fixed a Trojan-seeding bug caused by exactly
  this. Seeding and keying must use ``zlib.crc32`` (see
  ``core/trojans/base.py``) or a real digest.
* **DET002** — module-level ``random``/``numpy.random`` draws share
  process-global unseeded state; construct a seeded ``random.Random``.
* **DET003** — wall-clock reads inside simulation code leak host time
  into results that must be functions of the sim clock alone.
* **DET004** — set iteration order is arbitrary; a set feeding any
  ordered construction (lists, tuples, joins — and through them wire
  payloads, cache keys, reports) must be sorted first.
* **WIRE001** — binary payloads must land via
  :func:`repro.util.atomic_write` / ``atomic_pickle`` (``mkstemp`` +
  ``os.replace``), never a bare ``open(..., "wb")``/``pickle.dump``: a
  crashed writer must not leave a torn file under a final name.
* **WIRE002** — classes that travel in wire payloads must either define
  pickle hooks (``__getstate__``/``__reduce__``) or be explicitly
  allowlisted, in which case their declared fields are checked against a
  wire-safe type set — a new memo-carrying or unpicklable attribute
  fails lint instead of poisoning a shard.

Rules are :class:`ast.NodeVisitor`-based and registered in
:data:`REGISTRY`; the engine (:mod:`repro.analysis.lint.engine`) handles
discovery, per-rule path scoping from ``[tool.repro.lint]``, and
``# repro: lint-ignore[RULE]`` suppressions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: the one suppression syntax: ``# repro: lint-ignore[RULE, ...]``.
#: Shared with the engine so the LINT000 rule and the suppression
#: machinery can never drift apart.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_*\s,]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass
class ModuleContext:
    """One parsed source file as the rules see it."""

    path: str  # project-relative, forward slashes
    tree: ast.Module
    source: str


def _walk_with_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted origins for every import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from random import randint`` -> ``{"randint": "random.randint"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    Conditional/function-local imports are included — for linting purposes
    a name bound to a module anywhere in the file counts everywhere.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to its canonical dotted origin.

    ``np.random.rand`` -> ``"numpy.random.rand"`` when ``np`` aliases
    numpy; returns ``None`` for anything that does not bottom out in a
    plain name.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _assigned_names(tree: ast.Module) -> Set[str]:
    """Every plain name the module binds (assignments, defs, args, imports)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
    return names


class Rule:
    """Base class: metadata + the per-module ``check`` hook."""

    code: str = "RULE000"
    name: str = "rule"
    summary: str = ""
    rationale: str = ""
    fix: str = ""
    #: path prefixes the rule applies to when the config does not say;
    #: ``None`` means every checked file.
    default_include: Optional[Tuple[str, ...]] = None
    #: config keys the rule understands under ``[tool.repro.lint.<CODE>]``;
    #: the engine fails loud on anything else (the silent-typo trap).
    option_keys: Tuple[str, ...] = ("include", "exempt")

    def __init__(self, options: Optional[Dict[str, Any]] = None) -> None:
        self.options = dict(options or {})
        include = self.options.get("include", self.default_include)
        self.include: Optional[Tuple[str, ...]] = (
            tuple(include) if include else None
        )
        self.exempt: Tuple[str, ...] = tuple(self.options.get("exempt", ()))

    # ------------------------------------------------------------------
    def applies_to(self, rel_path: str) -> bool:
        def under(prefixes: Sequence[str]) -> bool:
            return any(
                rel_path == p or rel_path.startswith(p.rstrip("/") + "/")
                for p in prefixes
            )

        if self.exempt and under(self.exempt):
            return False
        return self.include is None or under(self.include)

    def check(self, module: ModuleContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ----------------------------------------------------------------------
# DET001 — builtin hash() for seeding/keying
# ----------------------------------------------------------------------
class BuiltinHashRule(Rule):
    code = "DET001"
    name = "builtin-hash"
    summary = "builtin hash() is randomized per process; never seed or key with it"
    rationale = (
        "str/bytes hashing is salted by PYTHONHASHSEED, so hash() of the same "
        "value differs between processes and runs. Any RNG seed, cache key, or "
        "shard assignment derived from it silently diverges across hosts — the "
        "exact PR 2 bug where every stochastic Trojan drew different values per "
        "process. Use zlib.crc32 (the core/trojans/base.py idiom) or hashlib."
    )
    fix = "replace hash(x) with zlib.crc32(repr(x).encode()) or a hashlib digest"

    def check(self, module: ModuleContext) -> List[Finding]:
        if "hash" in _assigned_names(module.tree):
            return []  # a local/imported `hash` shadows the builtin
        findings = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "builtin hash() is process-salted (PYTHONHASHSEED); "
                        "use zlib.crc32/hashlib for anything that must "
                        "reproduce across processes",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# DET002 — unseeded module-level RNG draws
# ----------------------------------------------------------------------
class UnseededRandomRule(Rule):
    code = "DET002"
    name = "unseeded-random"
    summary = "module-level random/numpy.random draws use process-global unseeded state"
    rationale = (
        "random.random()/randint()/choice() and numpy.random.* draw from one "
        "process-wide generator whose state depends on import order, worker "
        "count, and whatever ran before — three things the serial vs distributed "
        "topologies never agree on. Simulation code must draw from an explicitly "
        "seeded random.Random instance (see TrojanContext.rng_for)."
    )
    fix = "construct random.Random(seed) (CRC-32-mixed per consumer) and draw from it"

    _RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}
    _NUMPY_OK = {"default_rng", "RandomState", "Generator", "SeedSequence",
                 "get_state", "set_state"}

    def check(self, module: ModuleContext) -> List[Finding]:
        imports = _walk_with_imports(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, imports)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                attr = dotted.split(".", 1)[1]
                if attr == "Random" and not node.args:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "random.Random() without a seed falls back to OS "
                            "entropy; pass an explicit seed",
                        )
                    )
                elif "." not in attr and attr not in self._RANDOM_OK:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"random.{attr}() draws from the process-global "
                            "unseeded generator; draw from an explicitly "
                            "seeded random.Random instance",
                        )
                    )
            elif dotted.startswith("numpy.random."):
                attr = dotted.rsplit(".", 1)[1]
                if attr not in self._NUMPY_OK:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"numpy.random.{attr}() uses the global numpy "
                            "generator; use numpy.random.default_rng(seed)",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# DET003 — wall-clock reads in simulation code
# ----------------------------------------------------------------------
class WallClockRule(Rule):
    code = "DET003"
    name = "wall-clock"
    summary = "wall-clock reads inside simulation code; results must use the sim clock"
    rationale = (
        "time.time()/perf_counter()/datetime.now() read the host, not the "
        "simulation: any value derived from them differs per run and per host, "
        "so it can never appear in a verdict, a cache key, or a wire payload. "
        "Simulation code must consume Simulator.now (sim-time ns). time.monotonic "
        "is deliberately not flagged — it is the sanctioned clock for timeouts "
        "and polling cadence, which are coordination, not results. Legitimate "
        "wall-clock sites (heartbeat staleness, wall-clock economics reported "
        "next to results) carry a `# repro: lint-ignore[DET003]` with a reason."
    )
    fix = "use the sim clock (Simulator.now) or suppress with a justified lint-ignore"

    _WALL_CLOCK = {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, module: ModuleContext) -> List[Finding]:
        imports = _walk_with_imports(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, imports)
            if dotted in self._WALL_CLOCK:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{dotted}() reads the host wall clock; simulation "
                        "results must be functions of the sim clock only",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# DET004 — ordered consumption of bare sets
# ----------------------------------------------------------------------
class SetOrderRule(Rule):
    code = "DET004"
    name = "set-ordering"
    summary = "a bare set feeds an ordered construction; its iteration order is arbitrary"
    rationale = (
        "Set iteration order depends on insertion history and per-process string "
        "hashing, so a set feeding a list, tuple, join, or loop that builds "
        "ordered output produces different bytes on different hosts — fatal for "
        "anything serialized, cache-keyed, or shipped over the wire. Membership "
        "tests, len(), and sorted()/min()/max()/sum() over sets are fine; it is "
        "the *ordered consumption* that must go through sorted() first."
    )
    fix = "wrap the set in sorted(...) before iterating into ordered output"

    _ORDERED_CALLS = {"list", "tuple", "enumerate"}

    def check(self, module: ModuleContext) -> List[Finding]:
        set_names = self._set_valued_names(module.tree)
        findings: List[Finding] = []

        def is_set_expr(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
            ):
                return True
            if isinstance(node, ast.Name) and node.id in set_names:
                return True
            if isinstance(node, ast.Attribute) and node.attr in set_names:
                return True
            return False

        def describe(node: ast.AST) -> str:
            if isinstance(node, ast.Name):
                return f"set {node.id!r}"
            if isinstance(node, ast.Attribute):
                return f"set {node.attr!r}"
            return "a set expression"

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and is_set_expr(node.iter):
                findings.append(
                    self.finding(
                        module,
                        node.iter,
                        f"for-loop iterates {describe(node.iter)} directly; "
                        "iteration order is arbitrary — sort it first",
                    )
                )
            elif isinstance(node, ast.ListComp):
                gen = node.generators[0]
                if is_set_expr(gen.iter):
                    findings.append(
                        self.finding(
                            module,
                            gen.iter,
                            f"list comprehension over {describe(gen.iter)} "
                            "builds ordered output from arbitrary set order",
                        )
                    )
            elif isinstance(node, ast.Call):
                target = None
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDERED_CALLS
                    and node.args
                ):
                    target = node.args[0]
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                ):
                    target = node.args[0]
                if target is None:
                    continue
                consumer = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else "str.join"
                )
                if is_set_expr(target):
                    findings.append(
                        self.finding(
                            module,
                            target,
                            f"{consumer}() over {describe(target)} freezes "
                            "arbitrary set order into ordered output",
                        )
                    )
                elif isinstance(target, ast.GeneratorExp) and is_set_expr(
                    target.generators[0].iter
                ):
                    findings.append(
                        self.finding(
                            module,
                            target.generators[0].iter,
                            f"{consumer}() consumes a generator over "
                            f"{describe(target.generators[0].iter)}; the set's "
                            "arbitrary order becomes ordered output",
                        )
                    )
        return findings

    @staticmethod
    def _set_valued_names(tree: ast.Module) -> Set[str]:
        """Names (and attribute names) only ever assigned set expressions.

        Conservative: a name that is *ever* rebound to something that is
        not syntactically a set drops out, so mixed-type reuse cannot
        false-positive.
        """
        set_bound: Set[str] = set()
        other_bound: Set[str] = set()

        def value_is_set(value: ast.AST) -> bool:
            return isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")
            )

        def record(target: ast.AST, value: Optional[ast.AST]) -> None:
            names: List[str] = []
            if isinstance(target, ast.Name):
                names = [target.id]
            elif isinstance(target, ast.Attribute):
                names = [target.attr]
            elif isinstance(target, (ast.Tuple, ast.List)):
                other_bound.update(
                    el.id for el in target.elts if isinstance(el, ast.Name)
                )
                return
            for name in names:
                if value is not None and value_is_set(value):
                    set_bound.add(name)
                else:
                    other_bound.add(name)

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                record(node.target, node.value)
            elif isinstance(node, ast.arg):
                other_bound.add(node.arg)
        return set_bound - other_bound


# ----------------------------------------------------------------------
# WIRE001 — non-atomic binary writes / raw pickle.dump
# ----------------------------------------------------------------------
class AtomicWriteRule(Rule):
    code = "WIRE001"
    name = "non-atomic-write"
    summary = "binary payload written without the atomic mkstemp + os.replace helper"
    rationale = (
        "The work-dir protocol and the session cache both promise that a file "
        "under a final name is complete: claims are atomic renames and a torn "
        "read degrades safely only because writers never put partial bytes at "
        "a final path. A bare open(..., 'wb') + write (or pickle.dump) breaks "
        "that promise the first time a worker dies mid-write. Every binary "
        "payload must go through repro.util.atomic_write / atomic_pickle — "
        "the helper module itself is the rule's one configured exemption."
    )
    fix = "route the write through repro.util.atomic_write / atomic_pickle"

    def check(self, module: ModuleContext) -> List[Finding]:
        imports = _walk_with_imports(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, imports)
            if dotted == "pickle.dump":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "raw pickle.dump() to a handle; use "
                        "repro.util.atomic_pickle so a crashed writer cannot "
                        "leave a torn payload under a final name",
                    )
                )
                continue
            mode = self._write_binary_mode(node, dotted)
            if mode is not None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"open(..., {mode!r}) writes binary bytes in place; "
                        "use repro.util.atomic_write (mkstemp + os.replace)",
                    )
                )
        return findings

    @staticmethod
    def _write_binary_mode(node: ast.Call, dotted: Optional[str]) -> Optional[str]:
        """The mode string when this call opens a file for binary writing."""
        mode_index: Optional[int] = None
        if dotted in ("open", "io.open", "os.fdopen"):
            mode_index = 1
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
            mode_index = 0  # pathlib-style some_path.open("wb")
        if mode_index is None:
            return None
        mode_node: Optional[ast.AST] = None
        if len(node.args) > mode_index:
            mode_node = node.args[mode_index]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
        if not (isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str)):
            return None
        mode = mode_node.value
        # Pure append streams ("ab") only ever add bytes at the end; the
        # torn-write hazard is truncate/create/update modes.
        if "b" in mode and any(flag in mode for flag in ("w", "x", "+")):
            return mode
        return None


# ----------------------------------------------------------------------
# WIRE002 — wire classes must be pickle-safe by construction
# ----------------------------------------------------------------------
class WireClassRule(Rule):
    code = "WIRE002"
    name = "wire-class-safety"
    summary = "a wire-payload class must define pickle hooks or be allowlisted with safe fields"
    rationale = (
        "Everything pickled into the work dir (shards, results, verdict rows, "
        "cache entries) crosses process and host boundaries. A class on that "
        "path either controls its own serialized state (__getstate__/__reduce__ "
        "— how SessionSummary drops its _capture memo and Verdict drops live "
        "reports) or is allowlisted as a plain data carrier, in which case every "
        "declared field must be a wire-safe type. Adding an unpicklable or "
        "memo-carrying attribute then fails lint at commit time instead of "
        "poisoning a shard at 2 a.m. on some worker host."
    )
    fix = (
        "define __getstate__/__reduce__ on the class, or add it to "
        "[tool.repro.lint.WIRE002] wire-allowlist and keep its fields wire-safe"
    )
    option_keys = (
        "include", "exempt", "wire-classes", "wire-allowlist", "safe-types",
    )

    _HOOKS = {
        "__getstate__",
        "__reduce__",
        "__reduce_ex__",
        "__getnewargs__",
        "__getnewargs_ex__",
    }
    _SAFE_BUILTINS = {
        "int", "float", "str", "bool", "bytes", "complex",
        "None", "NoneType",
        "Optional", "Union", "Literal", "ClassVar", "Final",
        "List", "Dict", "Tuple", "Set", "FrozenSet",
        "Sequence", "Mapping", "MutableMapping", "Iterable", "Collection",
        "list", "dict", "tuple", "set", "frozenset",
    }
    #: the protocol's payload classes; the engine's config normally
    #: overrides this, the default keeps the rule useful config-free.
    _DEFAULT_WIRE_CLASSES = (
        "WorkShard",
        "ShardResult",
        "ScenarioJob",
        "ScenarioVerdicts",
        "SessionDigest",
        "SessionSpec",
        "SessionSummary",
        "ScoreSpec",
        "Verdict",
    )

    def __init__(self, options: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(options)
        self.wire_classes: Set[str] = set(
            self.options.get("wire-classes", self._DEFAULT_WIRE_CLASSES)
        )
        self.allowlist: Set[str] = set(self.options.get("wire-allowlist", ()))
        self.safe_types: Set[str] = (
            self._SAFE_BUILTINS
            | self.wire_classes
            | set(self.options.get("safe-types", ()))
        )

    def check(self, module: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in self.wire_classes:
                continue
            has_hooks = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in self._HOOKS
                for item in node.body
            )
            if has_hooks:
                continue
            if node.name not in self.allowlist:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"class {node.name} travels in wire payloads but "
                        "defines no __getstate__/__reduce__ and is not in "
                        "the wire allowlist",
                    )
                )
                continue
            for item in node.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                field_name = (
                    item.target.id
                    if isinstance(item.target, ast.Name)
                    else "<field>"
                )
                for bad in self._unsafe_names(item.annotation):
                    findings.append(
                        self.finding(
                            module,
                            item,
                            f"{node.name}.{field_name}: type {bad!r} is not "
                            "wire-safe; give the class __getstate__/"
                            "__reduce__, or add the type to the WIRE002 "
                            "safe-types/wire-classes config with a "
                            "justification",
                        )
                    )
        return findings

    def _unsafe_names(self, annotation: ast.AST) -> Iterable[str]:
        """Type names in an annotation that are not wire-safe."""
        bad: List[str] = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.Name):
                if node.id not in self.safe_types:
                    bad.append(node.id)
            elif isinstance(node, ast.Attribute):
                if node.attr not in self.safe_types:
                    bad.append(node.attr)
            elif isinstance(node, ast.Subscript):
                visit(node.value)
                visit(node.slice)
            elif isinstance(node, ast.Tuple):
                for el in node.elts:
                    visit(el)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, ast.Constant):
                if isinstance(node.value, str):
                    # A quoted forward reference: check its head identifier.
                    match = re.match(r"[A-Za-z_][A-Za-z0-9_]*", node.value)
                    if match and match.group(0) not in self.safe_types:
                        bad.append(match.group(0))
                # None / Ellipsis constants are fine.

        visit(annotation)
        return bad


# ----------------------------------------------------------------------
# LINT000 — unknown rule id inside a lint-ignore suppression
# ----------------------------------------------------------------------
class UnknownSuppressionRule(Rule):
    code = "LINT000"
    name = "unknown-suppression"
    summary = "a lint-ignore suppression names a rule id that does not exist"
    rationale = (
        "`# repro: lint-ignore[DET03]` parses fine, matches nothing, and "
        "suppresses nothing — the author believes a finding is waived while "
        "the rule keeps firing, or worse, believes a rule is guarding a line "
        "it never sees. A misspelled id in a suppression is always a bug in "
        "the suppression, so it fails loud with the known rule set. Only "
        "real comments are scanned (tokenize-level), so docstrings that "
        "*describe* the suppression syntax do not trip it."
    )
    fix = "fix the rule id (see `repro lint --rules` for the catalog) or delete the dead suppression"
    option_keys = ("include", "exempt", "known-codes")

    def check(self, module: ModuleContext) -> List[Finding]:
        known = set(self.options.get("known-codes", ()))
        if not known:
            known = set(RULES_BY_CODE)
        known |= {"*", "SYNTAX"}
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(module.source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return []
        findings: List[Finding] = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            for match in SUPPRESS_RE.finditer(tok.string):
                codes = {
                    code.strip()
                    for code in match.group(1).split(",")
                    if code.strip()
                }
                for code in sorted(codes - known):
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=module.path,
                            line=tok.start[0],
                            col=tok.start[1] + match.start(),
                            message=(
                                f"unknown rule {code!r} in lint-ignore "
                                "suppression — it suppresses nothing. Known "
                                "rules: "
                                + ", ".join(sorted(known - {"*", "SYNTAX"}))
                            ),
                        )
                    )
        return findings


REGISTRY: Tuple[Type[Rule], ...] = (
    BuiltinHashRule,
    UnseededRandomRule,
    WallClockRule,
    SetOrderRule,
    AtomicWriteRule,
    WireClassRule,
    UnknownSuppressionRule,
)

RULES_BY_CODE: Dict[str, Type[Rule]] = {cls.code: cls for cls in REGISTRY}
