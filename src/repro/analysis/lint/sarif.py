"""SARIF 2.1.0 rendering for ``repro lint`` (``--sarif``).

SARIF is the one static-analysis interchange format CI platforms
actually consume: uploading the file via ``github/codeql-action/
upload-sarif`` turns lint findings into inline PR annotations at the
offending line, with the rule's rationale a click away — no log
spelunking.

The mapping is deliberately minimal but complete:

* one ``run`` with the full rule catalog (per-file + contract rules) in
  ``tool.driver.rules``, so viewers can show summaries/rationale;
* **new** findings are ``level: error`` with ``baselineState: "new"``;
* **baselined** findings are ``level: warning`` with ``baselineState:
  "unchanged"`` and the committed justification appended — visible debt,
  not a failure;
* in-source ``lint-ignore`` suppressions are emitted as ``level: note``
  results carrying a ``suppressions`` entry (``kind: "inSource"``), the
  SARIF-native way to say "found but waived".

Only stable repo-relative paths and 1-based lines/columns go into
locations, so the same tree produces the same SARIF bytes everywhere —
the determinism contract applies to the linter's own output too.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.lint.contracts import CONTRACT_REGISTRY
from repro.analysis.lint.rules import REGISTRY, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"


def _rule_descriptor(cls: Any) -> Dict[str, Any]:
    return {
        "id": cls.code,
        "name": cls.name,
        "shortDescription": {"text": cls.summary},
        "fullDescription": {"text": cls.rationale},
        "help": {"text": f"fix: {cls.fix}"},
    }


def _result(
    finding: Finding,
    level: str,
    rule_index: Dict[str, int],
    baseline_state: Optional[str] = None,
    justification: Optional[str] = None,
    suppressed: bool = False,
) -> Dict[str, Any]:
    message = finding.message
    if justification:
        message = f"{message} [baselined: {justification}]"
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": level,
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": "# repro: lint-ignore suppression",
            }
        ]
    return result


def render_sarif(
    findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    suppressed: Sequence[Finding] = (),
    justifications: Optional[Dict[int, str]] = None,
) -> str:
    """The SARIF 2.1.0 document for one lint run.

    ``justifications`` maps an index into ``baselined`` to its committed
    justification string (the engine threads these from the baseline).
    """
    rules = [
        _rule_descriptor(cls)
        for cls in tuple(REGISTRY) + tuple(CONTRACT_REGISTRY)
    ]
    rule_index = {descriptor["id"]: i for i, descriptor in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append(_result(finding, "error", rule_index, "new"))
    for i, finding in enumerate(baselined):
        results.append(
            _result(
                finding,
                "warning",
                rule_index,
                "unchanged",
                justification=(justifications or {}).get(i),
            )
        )
    for finding in suppressed:
        results.append(_result(finding, "note", rule_index, suppressed=True))
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
