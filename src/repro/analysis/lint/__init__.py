"""``repro lint`` — the determinism & wire-safety static analyzer.

The repo's core promise is byte-identical verdicts across serial,
``--hosts N``, and ``--hosts N --workers M`` topologies. Every parity
bug so far was a *static* pattern — randomized ``hash()`` seeding,
non-atomic work-dir writes, unversioned pickles on the wire — so this
package detects those patterns mechanically at commit time, before the
dynamic parity harness ever runs.

Since contract lint v2 the analyzer is two-pass: per-file rules run
over each AST in isolation, then the parsed modules assemble into a
:class:`ProjectModel` and the cross-file **contract rules** (cache-key
completeness, wire-schema drift vs. version constants, TOCTOU, lock
consistency, detector-protocol conformance) run over that. A committed
findings baseline (``repro lint --update-baseline``) lets strict rules
land without a flag-day, and ``--sarif`` emits SARIF 2.1.0 for CI
annotations.

Public surface:

* :func:`run_lint` / :class:`LintResult` — lint paths, get findings;
* :func:`render_text` / :func:`render_json` / :func:`rule_catalog` —
  the CLI output shapes;
* :data:`REGISTRY` / :class:`Rule` / :class:`Finding` — the rule engine
  (see :mod:`repro.analysis.lint.rules` for the catalog and the
  invariant each rule guards);
* :class:`LintConfig` — the ``[tool.repro.lint]`` pyproject table.

Suppression syntax, honored on the offending line or a comment line
directly above it::

    started = time.perf_counter()  # repro: lint-ignore[DET003] wall-clock economics

``repro lint --rules`` prints the full catalog.
"""

from repro.analysis.lint.baseline import BaselineEntry
from repro.analysis.lint.contracts import (
    CONTRACT_REGISTRY,
    CONTRACTS_BY_CODE,
    ProjectRule,
)
from repro.analysis.lint.engine import (
    ALL_RULES_BY_CODE,
    JSON_SCHEMA_VERSION,
    LintConfig,
    LintConfigError,
    LintProfile,
    LintResult,
    load_config,
    render_json,
    render_sarif_result,
    render_text,
    rule_catalog,
    run_lint,
    update_baseline,
    update_wire_baseline,
)
from repro.analysis.lint.project import ProjectModel
from repro.analysis.lint.rules import REGISTRY, RULES_BY_CODE, Finding, Rule

__all__ = [
    "ALL_RULES_BY_CODE",
    "BaselineEntry",
    "CONTRACT_REGISTRY",
    "CONTRACTS_BY_CODE",
    "JSON_SCHEMA_VERSION",
    "ProjectModel",
    "ProjectRule",
    "REGISTRY",
    "RULES_BY_CODE",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintProfile",
    "LintResult",
    "Rule",
    "load_config",
    "render_json",
    "render_sarif_result",
    "render_text",
    "rule_catalog",
    "run_lint",
    "update_baseline",
    "update_wire_baseline",
]
