"""``repro lint`` — the determinism & wire-safety static analyzer.

The repo's core promise is byte-identical verdicts across serial,
``--hosts N``, and ``--hosts N --workers M`` topologies. Every parity
bug so far was a *static* pattern — randomized ``hash()`` seeding,
non-atomic work-dir writes, unversioned pickles on the wire — so this
package detects those patterns mechanically at commit time, before the
dynamic parity harness ever runs.

Public surface:

* :func:`run_lint` / :class:`LintResult` — lint paths, get findings;
* :func:`render_text` / :func:`render_json` / :func:`rule_catalog` —
  the CLI output shapes;
* :data:`REGISTRY` / :class:`Rule` / :class:`Finding` — the rule engine
  (see :mod:`repro.analysis.lint.rules` for the catalog and the
  invariant each rule guards);
* :class:`LintConfig` — the ``[tool.repro.lint]`` pyproject table.

Suppression syntax, honored on the offending line or a comment line
directly above it::

    started = time.perf_counter()  # repro: lint-ignore[DET003] wall-clock economics

``repro lint --rules`` prints the full catalog.
"""

from repro.analysis.lint.engine import (
    JSON_SCHEMA_VERSION,
    LintConfig,
    LintResult,
    load_config,
    render_json,
    render_text,
    rule_catalog,
    run_lint,
)
from repro.analysis.lint.rules import REGISTRY, RULES_BY_CODE, Finding, Rule

__all__ = [
    "JSON_SCHEMA_VERSION",
    "REGISTRY",
    "RULES_BY_CODE",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "load_config",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_lint",
]
