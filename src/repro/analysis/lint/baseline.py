"""The findings baseline: land strict rules without a flag-day.

A new contract rule that fires on existing code forces a bad choice:
weaken the rule, fix every site in the same PR, or not ship the rule.
The baseline is the third way out — a committed JSON file
(``.repro-lint-baseline.json`` by default, configured via
``[tool.repro.lint] baseline``) listing findings that are *known and
justified*. The lint run then splits findings three ways:

* **new** findings (not in the baseline) fail the run — the gate stays
  a gate for all code written after the rule landed;
* **baselined** findings are reported as warnings, with the committed
  justification, and never fail;
* **stale** baseline entries (the finding no longer occurs — the debt
  was paid) are reported so the file shrinks monotonically; they are
  pruned by ``repro lint --update-baseline``.

Identity is ``(rule, path, message)`` — deliberately *not* line/col, so
unrelated edits above a baselined site do not resurrect it, while any
change to what the rule actually says about the code does. Matching is
multiset-style: three identical findings need three entries.

``--update-baseline`` rewrites the file from the current run, carrying
existing justifications forward and stamping new entries with a TODO
marker that is meant to be replaced in review.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.lint.rules import Finding

BASELINE_FORMAT = 1
"""Bumped when the baseline file's JSON shape changes."""

DEFAULT_JUSTIFICATION = "TODO: justify this debt or fix the finding"


@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged finding carried as known debt."""

    rule: str
    path: str
    message: str
    justification: str = DEFAULT_JUSTIFICATION

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)


def finding_key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.rule, finding.path, finding.message)


def load_baseline(path: str) -> List[BaselineEntry]:
    """Entries from a committed baseline file ([] when absent).

    A malformed file raises — silently treating garbage as "no baseline"
    would flip every baselined finding back to failing with a confusing
    message, or worse, --update-baseline would overwrite hand-written
    justifications.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return []
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ValueError(
            f"malformed lint baseline {path!r}: expected "
            '{"format": ..., "entries": [...]}'
        )
    entries = []
    for raw in data["entries"]:
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                message=str(raw["message"]),
                justification=str(
                    raw.get("justification", DEFAULT_JUSTIFICATION)
                ),
            )
        )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[
    List[Finding], List[Tuple[Finding, BaselineEntry]], List[BaselineEntry]
]:
    """Split ``findings`` against the baseline.

    Returns ``(new, baselined, stale)``: findings not covered by any
    entry, ``(finding, entry)`` pairs where an entry consumed the
    finding (one entry covers one finding — multiset semantics), and
    entries that matched nothing this run.
    """
    budget: Dict[Tuple[str, str, str], List[BaselineEntry]] = {}
    for entry in entries:
        budget.setdefault(entry.key(), []).append(entry)
    new: List[Finding] = []
    baselined: List[Tuple[Finding, BaselineEntry]] = []
    for finding in findings:
        remaining = budget.get(finding_key(finding))
        if remaining:
            baselined.append((finding, remaining.pop()))
        else:
            new.append(finding)
    stale = [entry for leftovers in budget.values() for entry in leftovers]
    stale.sort(key=lambda e: e.key())
    return new, baselined, stale


def render_baseline(
    findings: Sequence[Finding], previous: Sequence[BaselineEntry]
) -> str:
    """The baseline file content acknowledging exactly ``findings``.

    Justifications from ``previous`` are carried forward per matching
    identity (again multiset-style); genuinely new entries get the TODO
    marker.
    """
    carried: Dict[Tuple[str, str, str], List[str]] = {}
    for entry in previous:
        carried.setdefault(entry.key(), []).append(entry.justification)
    entries = []
    for finding in sorted(findings, key=finding_key):
        justifications = carried.get(finding_key(finding))
        justification = (
            justifications.pop(0) if justifications else DEFAULT_JUSTIFICATION
        )
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "justification": justification,
            }
        )
    payload = {"format": BASELINE_FORMAT, "entries": entries}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
