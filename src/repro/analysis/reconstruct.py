"""Toolpath reconstruction from captured control signals.

The paper closes by noting the platform enables "even reverse-engineering
printed parts from their control signals" — the IP-theft scenario its
related-work section surveys over lossy side-channels. With direct signal
access the reconstruction is essentially lossless; this module implements it
at both fidelities the platform offers:

* :func:`reconstruct_from_trace` — from a logic-analyzer signal trace
  (STEP pulses + DIR edges): replays every extruder step, reading the X/Y/Z
  positions at that instant, so the deposited geometry is recovered at
  sub-0.1 mm resolution.
* :func:`reconstruct_from_transactions` — from the 0.1 s UART transaction
  stream alone (what a host sees): coarser, but requiring no high-speed
  capture — the paper's noted host-link limitation in action.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.capture import Transaction
from repro.errors import DetectionError
from repro.sim.trace import Tracer

_DEFAULT_STEPS_PER_MM = {"X": 100.0, "Y": 100.0, "Z": 400.0, "E": 280.0}


@dataclass
class ReconstructedPart:
    """Geometry recovered from captured signals."""

    deposition_points: List[Tuple[float, float, float]]  # (x, y, z) mm
    extruded_mm: float  # filament driven forward during deposition
    layer_zs: List[float] = field(default_factory=list)

    @property
    def bbox_mm(self) -> Tuple[float, float, float, float]:
        """(xmin, ymin, xmax, ymax) of the deposited material."""
        if not self.deposition_points:
            raise DetectionError("no deposition points recovered")
        xs = [p[0] for p in self.deposition_points]
        ys = [p[1] for p in self.deposition_points]
        return (min(xs), min(ys), max(xs), max(ys))

    @property
    def footprint_mm(self) -> Tuple[float, float]:
        """(width, depth) of the recovered part."""
        xmin, ymin, xmax, ymax = self.bbox_mm
        return (xmax - xmin, ymax - ymin)

    @property
    def layer_count(self) -> int:
        return len(self.layer_zs)

    @property
    def height_mm(self) -> float:
        """Part height: the layer-z span plus one layer pitch.

        Positions recovered from signals are relative to wherever counting
        started, so height is measured as a span, not an absolute z.
        """
        if len(self.layer_zs) < 2:
            return 0.0
        pitch = self.layer_zs[1] - self.layer_zs[0]
        return (self.layer_zs[-1] - self.layer_zs[0]) + pitch

    def summary(self) -> str:
        width, depth = self.footprint_mm
        return (
            f"recovered part: {width:.2f} x {depth:.2f} mm footprint, "
            f"{self.layer_count} layers to z={self.height_mm:.2f} mm, "
            f"{self.extruded_mm:.1f} mm filament, "
            f"{len(self.deposition_points)} deposition points"
        )


class _AxisReplay:
    """Signed position over time for one axis, replayed from its signals."""

    def __init__(self, step_events, dir_events, initial_dir: int = 0) -> None:
        # dir_events: (time_ns, value); step_events: time_ns list
        self.times: List[int] = []
        self.positions: List[int] = []
        position = 0
        dir_index = 0
        direction = 1 if initial_dir else -1
        dir_events = list(dir_events)
        for t in step_events:
            while dir_index < len(dir_events) and dir_events[dir_index][0] <= t:
                direction = 1 if dir_events[dir_index][1] else -1
                dir_index += 1
            position += direction
            self.times.append(t)
            self.positions.append(position)

    def position_at(self, t: int) -> int:
        """Step position immediately after the last event at or before ``t``."""
        index = bisect.bisect_right(self.times, t) - 1
        return self.positions[index] if index >= 0 else 0


def reconstruct_from_trace(
    tracer: Tracer,
    steps_per_mm: Optional[Dict[str, float]] = None,
    layer_quantum_mm: float = 0.02,
) -> ReconstructedPart:
    """Recover deposited geometry from a control-signal trace.

    Expects the upstream motion signals (``X_STEP.up``, ``X_DIR.up``, ...)
    to have been watched during the print (``trace_signals=True`` on the
    session). Positions are relative to wherever counting started; the
    *shape* (footprint, layer structure, filament use) is what IP theft
    is after, and that is translation-invariant.
    """
    spm = steps_per_mm or _DEFAULT_STEPS_PER_MM
    replays: Dict[str, _AxisReplay] = {}
    for axis in ("X", "Y", "Z", "E"):
        steps = [e.time_ns for e in tracer.trace(f"{axis}_STEP.up").events]
        dirs = [
            (e.time_ns, int(e.value)) for e in tracer.trace(f"{axis}_DIR.up").events
        ]
        replays[axis] = _AxisReplay(steps, dirs)

    e_replay = replays["E"]
    if not e_replay.times:
        raise DetectionError("trace contains no extruder steps to reconstruct from")

    points: List[Tuple[float, float, float]] = []
    forward_steps = 0
    previous_e = 0
    for t, e_pos in zip(e_replay.times, e_replay.positions):
        if e_pos <= previous_e:
            previous_e = e_pos
            continue  # retraction or re-prime: not deposition
        previous_e = e_pos
        forward_steps += 1
        points.append(
            (
                replays["X"].position_at(t) / spm["X"],
                replays["Y"].position_at(t) / spm["Y"],
                replays["Z"].position_at(t) / spm["Z"],
            )
        )

    return ReconstructedPart(
        deposition_points=points,
        extruded_mm=forward_steps / spm["E"],
        layer_zs=_layers_of(points, layer_quantum_mm),
    )


def reconstruct_from_transactions(
    transactions: Sequence[Transaction],
    steps_per_mm: Optional[Dict[str, float]] = None,
    layer_quantum_mm: float = 0.02,
) -> ReconstructedPart:
    """Recover coarse geometry from the UART transaction stream alone."""
    txns = list(transactions)
    if not txns:
        raise DetectionError("cannot reconstruct from an empty capture")
    spm = steps_per_mm or _DEFAULT_STEPS_PER_MM

    points: List[Tuple[float, float, float]] = []
    prev_e = txns[0].e
    for txn in txns[1:]:
        if txn.e > prev_e:  # filament advanced in this window: deposition
            points.append((txn.x / spm["X"], txn.y / spm["Y"], txn.z / spm["Z"]))
        prev_e = txn.e

    if not points:
        raise DetectionError("capture contains no extruding windows")
    extruded = (txns[-1].e - txns[0].e) / spm["E"]
    return ReconstructedPart(
        deposition_points=points,
        extruded_mm=max(0.0, extruded),
        layer_zs=_layers_of(points, layer_quantum_mm),
    )


def _layers_of(
    points: Sequence[Tuple[float, float, float]],
    quantum_mm: float,
    cluster_gap_mm: float = 0.1,
) -> List[float]:
    """Cluster deposition z values into layers.

    Coarse (transaction-rate) sampling can catch the Z axis mid-layer-change
    with filament still advancing; clustering nearby z values into one layer
    keeps the recovered layer count exact at both fidelities.
    """
    zs = sorted({round(p[2] / quantum_mm) * quantum_mm for p in points})
    if not zs:
        return []
    layers: List[List[float]] = [[zs[0]]]
    for z in zs[1:]:
        if z - layers[-1][-1] <= cluster_gap_mm:
            layers[-1].append(z)
        else:
            layers.append([z])
    return [round(sum(cluster) / len(cluster), 6) for cluster in layers]


def dimensional_error_mm(
    recovered: ReconstructedPart, true_width_mm: float, true_depth_mm: float
) -> float:
    """Worst-axis error between the recovered footprint and the true part."""
    width, depth = recovered.footprint_mm
    return max(abs(width - true_width_mm), abs(depth - true_depth_mm))
