"""Analysis utilities backing the paper's quantitative claims.

* :mod:`repro.analysis.overhead` — Section V-B's propagation-delay budget:
  the MITM's worst-case delay against the measured signal frequencies and
  pulse widths.
* :mod:`repro.analysis.drift` — the "time noise" statistics motivating the
  5 % detection margin (Section V-C).
* :mod:`repro.analysis.reconstruct` — toolpath recovery from captured
  signals (the "reverse-engineering printed parts" future-work direction).
"""

from repro.analysis.drift import DriftStats, drift_between
from repro.analysis.overhead import OverheadReport, analyze_overhead
from repro.analysis.reconstruct import (
    ReconstructedPart,
    dimensional_error_mm,
    reconstruct_from_trace,
    reconstruct_from_transactions,
)

__all__ = [
    "DriftStats",
    "OverheadReport",
    "ReconstructedPart",
    "analyze_overhead",
    "dimensional_error_mm",
    "drift_between",
    "reconstruct_from_trace",
    "reconstruct_from_transactions",
]
