"""Time-noise drift statistics (the basis of the 5 % margin).

"Additive manufacturing systems are asynchronous, so an instruction can take
a slightly different amount of time when executed multiple times or across
multiple prints. This variation, referred to as 'time noise', means that some
drift in the step counts will occur over the course of even known-good test
prints. This drift was, however, always less than a 5% difference in our
testing."

:func:`drift_between` quantifies that drift between two known-good captures
of the same part (different noise realizations): the distribution of
per-transaction relative differences and whether the end totals still match
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.capture import COLUMNS, Transaction
from repro.detection.comparator import DEFAULT_FLOOR_STEPS
from repro.errors import DetectionError


@dataclass(frozen=True)
class DriftStats:
    """Distribution of per-transaction drift between two golden prints."""

    transactions_compared: int
    max_percent: float
    mean_percent: float
    p99_percent: float
    final_totals_equal: bool

    def within_margin(self, margin_percent: float = 5.0) -> bool:
        return self.max_percent <= margin_percent

    def render(self) -> str:
        return (
            f"drift over {self.transactions_compared} transactions: "
            f"max {self.max_percent:.3f}%, mean {self.mean_percent:.3f}%, "
            f"p99 {self.p99_percent:.3f}%, final totals "
            f"{'equal' if self.final_totals_equal else 'DIFFER'}"
        )


def drift_between(
    first: Sequence[Transaction],
    second: Sequence[Transaction],
    floor_steps: int = DEFAULT_FLOOR_STEPS,
) -> DriftStats:
    """Per-transaction drift between two captures of the same good print."""
    a, b = list(first), list(second)
    if not a or not b:
        raise DetectionError("cannot compute drift over an empty capture")
    compared = min(len(a), len(b))
    diffs: List[float] = []
    for g, s in zip(a[:compared], b[:compared]):
        for column in COLUMNS:
            gv, sv = g.value(column), s.value(column)
            denom = max(abs(gv), floor_steps)
            diffs.append(abs(sv - gv) / denom * 100.0)
    diffs.sort()
    final_equal = all(
        a[-1].value(column) == b[-1].value(column) for column in COLUMNS
    )
    return DriftStats(
        transactions_compared=compared,
        max_percent=diffs[-1],
        mean_percent=sum(diffs) / len(diffs),
        p99_percent=diffs[min(len(diffs) - 1, int(len(diffs) * 0.99))],
        final_totals_equal=final_equal,
    )
