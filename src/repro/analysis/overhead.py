"""Section V-B overhead analysis: is the MITM delay negligible?

"We estimated that the maximum propagation delay of any signal captured in
the detection design is 12.923 ns on the Y_DIR signal. The ordinary signals
between the Arduino and RAMPS boards were measured to have maximum
frequencies less than 20 kHz with a minimum pulse width of 1 µs. Given these
parameters, a 12.923 ns delay is negligible."

:func:`analyze_overhead` reproduces that argument from a recorded signal
trace: extract the fastest signal and the narrowest pulse, compare both
against the fabric's propagation delay, and judge negligibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.fpga import MAX_PROPAGATION_DELAY_NS
from repro.sim.trace import Tracer

NEGLIGIBLE_FRACTION = 0.02
"""Delay under 2 % of the minimum pulse width counts as negligible."""


@dataclass(frozen=True)
class OverheadReport:
    """The Section V-B numbers for one recorded print."""

    propagation_delay_ns: float
    max_signal_frequency_hz: float
    busiest_signal: str
    min_pulse_width_ns: int
    narrowest_signal: str
    delay_fraction_of_pulse: float
    delay_fraction_of_period: float
    per_signal_frequency_hz: Dict[str, float]

    @property
    def negligible(self) -> bool:
        """True when the delay is far inside the signal timing budget."""
        return self.delay_fraction_of_pulse <= NEGLIGIBLE_FRACTION

    def render(self) -> str:
        lines = [
            f"MITM propagation delay: {self.propagation_delay_ns:.3f}ns",
            f"Max signal frequency: {self.max_signal_frequency_hz / 1e3:.2f}kHz "
            f"({self.busiest_signal})",
            f"Min pulse width: {self.min_pulse_width_ns / 1e3:.2f}us "
            f"({self.narrowest_signal})",
            f"Delay / pulse width: {self.delay_fraction_of_pulse * 100:.3f}%",
            f"Delay / signal period: {self.delay_fraction_of_period * 100:.3f}%",
            f"Verdict: {'negligible' if self.negligible else 'NOT negligible'}",
        ]
        return "\n".join(lines)


def analyze_overhead(
    tracer: Tracer,
    propagation_delay_ns: float = MAX_PROPAGATION_DELAY_NS,
) -> OverheadReport:
    """Build the overhead report from a print's signal traces."""
    per_signal: Dict[str, float] = {}
    busiest = ""
    max_freq = 0.0
    narrowest = ""
    min_width: Optional[int] = None
    for name in tracer.signal_names:
        trace = tracer.trace(name)
        freq = trace.max_frequency_hz
        if freq is not None:
            per_signal[name] = freq
            if freq > max_freq:
                max_freq, busiest = freq, name
        width = trace.min_pulse_width_ns
        if width is not None and (min_width is None or width < min_width):
            min_width, narrowest = width, name

    min_width = min_width if min_width is not None else 1_000
    period_ns = 1e9 / max_freq if max_freq > 0 else float("inf")
    return OverheadReport(
        propagation_delay_ns=propagation_delay_ns,
        max_signal_frequency_hz=max_freq,
        busiest_signal=busiest,
        min_pulse_width_ns=min_width,
        narrowest_signal=narrowest,
        delay_fraction_of_pulse=propagation_delay_ns / min_width,
        delay_fraction_of_period=propagation_delay_ns / period_ns,
        per_signal_frequency_hz=per_signal,
    )
