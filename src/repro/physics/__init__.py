"""Printer physics: the real-world half of the cyber-physical loop.

The paper judges Trojans by their physical outcomes (shifted layers,
under-extruded walls, overheated hotends). This package turns the signal
streams arriving at the RAMPS outputs back into those outcomes: integrating
kinematics, first-order thermal dynamics with exact exponential integration,
an extrusion/deposition trace of where material actually went, and the
quality metrics used to score Table I.
"""

from repro.physics.deposition import LayerStats, PartTrace, TraceSample
from repro.physics.kinematics import AxisMechanics
from repro.physics.printer import PlantProfile, PrinterPlant
from repro.physics.quality import PartQualityReport, compare_traces
from repro.physics.thermal import ThermalNode

__all__ = [
    "AxisMechanics",
    "LayerStats",
    "PartQualityReport",
    "PartTrace",
    "PlantProfile",
    "PrinterPlant",
    "ThermalNode",
    "TraceSample",
    "compare_traces",
]
