"""Axis mechanics: motor microsteps → carriage position.

Each axis integrates signed steps into a physical position. Travel limits
model the hard frame: steps commanded past an end of travel do not move the
carriage (belts skip) and are recorded as crash steps — this is how runaway
Trojan moves manifest physically instead of teleporting the head.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import PlantError


class AxisMechanics:
    """One axis of the machine: position state plus step integration."""

    def __init__(
        self,
        name: str,
        steps_per_mm: float,
        min_mm: Optional[float] = None,
        max_mm: Optional[float] = None,
        start_mm: float = 0.0,
    ) -> None:
        if steps_per_mm <= 0:
            raise PlantError(f"steps_per_mm must be positive for axis {name}")
        if min_mm is not None and max_mm is not None and min_mm >= max_mm:
            raise PlantError(f"axis {name}: empty travel range [{min_mm}, {max_mm}]")
        self.name = name
        self.steps_per_mm = float(steps_per_mm)
        self.min_mm = min_mm
        self.max_mm = max_mm
        self.position_steps = round(start_mm * steps_per_mm)
        self.crash_steps = 0
        self.total_steps = 0
        self._listeners: List[Callable[[str, float, int], None]] = []

    @property
    def position_mm(self) -> float:
        return self.position_steps / self.steps_per_mm

    def on_move(self, callback: Callable[[str, float, int], None]) -> None:
        """Subscribe ``callback(axis_name, position_mm, time_ns)`` to motion."""
        self._listeners.append(callback)

    def step(self, direction: int, time_ns: int) -> None:
        """Advance one microstep in ``direction`` (+1/-1), honouring limits."""
        if direction not in (1, -1):
            raise PlantError(f"axis {self.name}: step direction must be +1/-1, got {direction}")
        self.total_steps += 1
        candidate = self.position_steps + direction
        candidate_mm = candidate / self.steps_per_mm
        if self.min_mm is not None and candidate_mm < self.min_mm:
            self.crash_steps += 1
            return
        if self.max_mm is not None and candidate_mm > self.max_mm:
            self.crash_steps += 1
            return
        self.position_steps = candidate
        position_mm = candidate / self.steps_per_mm
        for listener in self._listeners:
            listener(self.name, position_mm, time_ns)
