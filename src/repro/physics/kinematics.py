"""Axis mechanics: motor microsteps → carriage position.

Each axis integrates signed steps into a physical position. Travel limits
model the hard frame: steps commanded past an end of travel do not move the
carriage (belts skip) and are recorded as crash steps — this is how runaway
Trojan moves manifest physically instead of teleporting the head.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import PlantError


class AxisMechanics:
    """One axis of the machine: position state plus step integration."""

    def __init__(
        self,
        name: str,
        steps_per_mm: float,
        min_mm: Optional[float] = None,
        max_mm: Optional[float] = None,
        start_mm: float = 0.0,
    ) -> None:
        if steps_per_mm <= 0:
            raise PlantError(f"steps_per_mm must be positive for axis {name}")
        if min_mm is not None and max_mm is not None and min_mm >= max_mm:
            raise PlantError(f"axis {name}: empty travel range [{min_mm}, {max_mm}]")
        self.name = name
        self.steps_per_mm = float(steps_per_mm)
        self.min_mm = min_mm
        self.max_mm = max_mm
        self.position_steps = round(start_mm * steps_per_mm)
        self.crash_steps = 0
        self.total_steps = 0
        self._listeners: List[Callable[[str, float, int], None]] = []
        self._range_oks: List[Optional[Callable[[float, float], bool]]] = []

    @property
    def position_mm(self) -> float:
        return self.position_steps / self.steps_per_mm

    def on_move(
        self,
        callback: Callable[[str, float, int], None],
        range_ok: Optional[Callable[[float, float], bool]] = None,
    ) -> None:
        """Subscribe ``callback(axis_name, position_mm, time_ns)`` to motion.

        ``range_ok(lo_mm, hi_mm)`` declares the listener insensitive to
        intermediate positions inside that span: when every accepted step
        of a monotonic run stays within [lo, hi] and range_ok approves,
        one callback at the final position is equivalent to one per step.
        Listeners without ``range_ok`` veto batching entirely.
        """
        self._listeners.append(callback)
        self._range_oks.append(range_ok)

    def step(self, direction: int, time_ns: int) -> None:
        """Advance one microstep in ``direction`` (+1/-1), honouring limits."""
        if direction not in (1, -1):
            raise PlantError(f"axis {self.name}: step direction must be +1/-1, got {direction}")
        self.total_steps += 1
        candidate = self.position_steps + direction
        candidate_mm = candidate / self.steps_per_mm
        if self.min_mm is not None and candidate_mm < self.min_mm:
            self.crash_steps += 1
            return
        if self.max_mm is not None and candidate_mm > self.max_mm:
            self.crash_steps += 1
            return
        self.position_steps = candidate
        position_mm = candidate / self.steps_per_mm
        for listener in self._listeners:
            listener(self.name, position_mm, time_ns)

    def batch_ok(self, direction: int, count: int) -> bool:
        """Can ``count`` steps in ``direction`` be applied as one update?

        True only when (a) the whole monotonic run stays inside the travel
        limits — the end position suffices since every intermediate lies
        between start and end — and (b) every listener declared, via its
        ``range_ok``, that it cannot observe a transition inside the span.
        """
        if direction not in (1, -1):
            return False
        end = self.position_steps + direction * count
        end_mm = end / self.steps_per_mm
        if self.min_mm is not None and end_mm < self.min_mm:
            return False
        if self.max_mm is not None and end_mm > self.max_mm:
            return False
        start_mm = self.position_steps / self.steps_per_mm
        lo_mm = min(start_mm, end_mm)
        hi_mm = max(start_mm, end_mm)
        for range_ok in self._range_oks:
            if range_ok is None or not range_ok(lo_mm, hi_mm):
                return False
        return True

    def step_batch(self, direction: int, count: int, time_ns: int) -> None:
        """Apply ``count`` accepted steps at once; one listener call at the end.

        Only valid after :meth:`batch_ok` approved the same run — no limit
        clamping happens here, and listeners see only the final position.
        """
        self.total_steps += count
        self.position_steps += direction * count
        position_mm = self.position_steps / self.steps_per_mm
        for listener in self._listeners:
            listener(self.name, position_mm, time_ns)
