"""First-order thermal dynamics with exact integration between power changes.

A heater block is modelled as a lumped thermal mass ``C`` (J/K) losing heat
to ambient through conductance ``k`` (W/K). Between power changes the
temperature follows the exact exponential solution, so the model is both fast
(no fixed-step ODE integration) and exact regardless of event spacing:

    T(t) = T_inf + (T0 - T_inf) * exp(-(t - t0) / tau),
    T_inf = T_ambient + P / k,   tau = C / k.

Damage crossings (the destructive outcome of Trojan T7) are detected by
solving for the crossing time analytically and scheduling an event there, so
no overshoot is missed between samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PlantError
from repro.sim.kernel import EventHandle, Simulator


@dataclass(frozen=True)
class DamageEvent:
    """The heater crossed its damage threshold — hardware is being destroyed."""

    node: str
    time_ns: int
    temperature_c: float


class ThermalNode:
    """One lumped heater: the hotend block or the heated bed."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        heat_capacity_j_per_k: float,
        loss_w_per_k: float,
        ambient_c: float = 25.0,
        damage_temp_c: Optional[float] = None,
        initial_c: Optional[float] = None,
    ) -> None:
        if heat_capacity_j_per_k <= 0 or loss_w_per_k <= 0:
            raise PlantError(f"thermal node {name}: C and k must be positive")
        self.sim = sim
        self.name = name
        self.heat_capacity = float(heat_capacity_j_per_k)
        self.loss = float(loss_w_per_k)
        self.ambient_c = float(ambient_c)
        self.damage_temp_c = damage_temp_c
        self.damage_events: List[DamageEvent] = []

        self._t0_ns = sim.now
        self._temp0_c = float(initial_c) if initial_c is not None else self.ambient_c
        self._power_w = 0.0
        self.peak_temp_c = self._temp0_c
        self._damage_handle: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    @property
    def tau_s(self) -> float:
        """Thermal time constant in seconds."""
        return self.heat_capacity / self.loss

    @property
    def power_w(self) -> float:
        return self._power_w

    @property
    def steady_state_c(self) -> float:
        """Temperature the node converges to under the current power."""
        return self.ambient_c + self._power_w / self.loss

    def temperature_c(self, time_ns: Optional[int] = None) -> float:
        """Exact temperature at ``time_ns`` (default: now)."""
        t_ns = self.sim.now if time_ns is None else time_ns
        if t_ns < self._t0_ns:
            raise PlantError(f"thermal node {self.name}: query at t={t_ns} before state t0")
        dt_s = (t_ns - self._t0_ns) / 1e9
        t_inf = self.steady_state_c
        temp = t_inf + (self._temp0_c - t_inf) * math.exp(-dt_s / self.tau_s)
        if temp > self.peak_temp_c:
            self.peak_temp_c = temp
        return temp

    def set_power(self, power_w: float, time_ns: Optional[int] = None) -> None:
        """Change the applied heater power; re-anchors the exact solution."""
        if power_w < 0:
            raise PlantError(f"thermal node {self.name}: negative power {power_w}W")
        t_ns = self.sim.now if time_ns is None else time_ns
        self._temp0_c = self.temperature_c(t_ns)
        self._t0_ns = t_ns
        self._power_w = float(power_w)
        self._schedule_damage_check()

    # ------------------------------------------------------------------
    # Damage-threshold crossing
    # ------------------------------------------------------------------
    def _schedule_damage_check(self) -> None:
        if self._damage_handle is not None:
            self._damage_handle.cancel()
            self._damage_handle = None
        if self.damage_temp_c is None or self.damage_events:
            return
        crossing_ns = self._crossing_time_ns(self.damage_temp_c)
        if crossing_ns is not None:
            self._damage_handle = self.sim.schedule_at(crossing_ns, self._record_damage)

    def _crossing_time_ns(self, threshold_c: float) -> Optional[int]:
        """Absolute time the trajectory first reaches ``threshold_c``, if ever."""
        t_inf = self.steady_state_c
        if self._temp0_c >= threshold_c:
            return self._t0_ns
        if t_inf <= threshold_c:
            return None  # never reaches it under the current power
        ratio = (threshold_c - t_inf) / (self._temp0_c - t_inf)
        dt_s = -self.tau_s * math.log(ratio)
        return self._t0_ns + int(dt_s * 1e9) + 1

    def _record_damage(self) -> None:
        temp = self.temperature_c()
        self.damage_events.append(DamageEvent(self.name, self.sim.now, temp))

    @property
    def damaged(self) -> bool:
        """True once the node has crossed its damage threshold."""
        return bool(self.damage_events)
