"""Part-quality comparison: golden print vs suspect print.

Replaces the paper's visual evidence (parts photographed on 1/4-inch graph
paper) with quantitative metrics over deposition traces. Each Table I Trojan
has a metric that makes its effect legible:

* T1 (axis shift) / T4 (Z-wobble) — per-layer centroid deviation;
* T2 (flow reduction) / T3 (retraction tamper) — flow ratio and per-layer
  extrusion anomalies;
* T5 (Z shift) — layer z-spacing deviation;
* T9 (fan) — handled by the plant's fan profile, reported alongside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.physics.deposition import PartTrace

FanProfile = Sequence[Tuple[int, float]]
"""A fan duty step function: (time_ns, duty) change points, duty held until
the next entry (the plant's ``fan_profile`` shape)."""


def _duty_steps(profile: FanProfile, end_ns: int) -> List[Tuple[float, float]]:
    """The profile as (normalized start time, duty) steps over [0, 1]."""
    if end_ns <= 0:
        return []
    steps = [(min(1.0, max(0.0, t / end_ns)), duty) for t, duty in profile]
    if not steps or steps[0][0] > 0.0:
        steps.insert(0, (0.0, 0.0))
    return steps


def fan_deficit_fraction(
    golden_profile: FanProfile,
    golden_end_ns: int,
    suspect_profile: FanProfile,
    suspect_end_ns: int,
    collapse_ratio: float = 0.6,
    duty_floor: float = 0.05,
) -> float:
    """Fraction of the print the suspect fan spent collapsed below golden.

    Both profiles are placed on a normalized time axis (0 = print start,
    1 = print end), so prints of any length compare like-for-like — this is
    what makes the fan check *duration-aware*: a 10-second sabotage window
    is invisible in a 100-second print's whole-print mean but spans the same
    late-print region of the normalized axis on any part. The returned value
    is the measure of ``{t : golden(t) > duty_floor and
    suspect(t) < collapse_ratio * golden(t)}`` — the share of the print
    during which the part demonstrably under-cooled relative to its golden
    reference. Clean noise realizations disagree only for the microseconds
    around each duty transition, so their deficit fraction is ~0.
    """
    golden_steps = _duty_steps(golden_profile, golden_end_ns)
    suspect_steps = _duty_steps(suspect_profile, suspect_end_ns)
    if not golden_steps or not suspect_steps:
        return 0.0
    breakpoints = sorted({t for t, _ in golden_steps} | {t for t, _ in suspect_steps} | {1.0})

    def duty_at(steps: List[Tuple[float, float]], t: float) -> float:
        duty = steps[0][1]
        for start, value in steps:
            if start > t:
                break
            duty = value
        return duty

    deficit = 0.0
    for t0, t1 in zip(breakpoints, breakpoints[1:]):
        if t1 <= t0:
            continue
        golden_duty = duty_at(golden_steps, t0)
        if golden_duty <= duty_floor:
            continue
        if duty_at(suspect_steps, t0) < collapse_ratio * golden_duty:
            deficit += t1 - t0
    return deficit


@dataclass
class PartQualityReport:
    """Quantified differences between a suspect print and its golden print."""

    flow_ratio: float
    """Suspect total extrusion / golden total extrusion (1.0 = nominal)."""

    max_centroid_shift_mm: float
    """Largest per-layer centroid deviation between matched layers."""

    mean_centroid_shift_mm: float

    max_z_spacing_mm: float
    """Largest gap between consecutive deposited layers in the suspect."""

    golden_z_spacing_mm: float
    """Nominal layer spacing from the golden print."""

    layer_count_golden: int
    layer_count_suspect: int

    max_bbox_growth_mm: float
    """Largest growth of any layer bounding-box side vs golden (dimensional
    inaccuracy — T1's wandering head enlarges the footprint)."""

    per_layer_flow_ratio: List[float] = field(default_factory=list)

    @property
    def delaminated(self) -> bool:
        """Layer spacing opened to 1.5x nominal or worse (T5's failure mode)."""
        return self.max_z_spacing_mm > 1.5 * self.golden_z_spacing_mm + 1e-9

    @property
    def underextruded(self) -> bool:
        return self.flow_ratio < 0.9

    @property
    def overextruded(self) -> bool:
        return self.flow_ratio > 1.1

    @property
    def geometry_compromised(self) -> bool:
        """Visible geometric damage: layers displaced or footprint grown."""
        return self.max_centroid_shift_mm > 0.25 or self.max_bbox_growth_mm > 0.5

    def anomalies(self) -> List[str]:
        """Human-readable list of everything out of tolerance."""
        found = []
        if self.underextruded:
            found.append(f"under-extrusion (flow ratio {self.flow_ratio:.2f})")
        if self.overextruded:
            found.append(f"over-extrusion (flow ratio {self.flow_ratio:.2f})")
        if self.max_centroid_shift_mm > 0.25:
            found.append(f"layer shift (max centroid deviation {self.max_centroid_shift_mm:.2f}mm)")
        if self.max_bbox_growth_mm > 0.5:
            found.append(f"dimensional growth ({self.max_bbox_growth_mm:.2f}mm)")
        if self.delaminated:
            found.append(f"layer delamination (z gap {self.max_z_spacing_mm:.2f}mm)")
        if self.layer_count_suspect != self.layer_count_golden:
            found.append(
                f"layer count {self.layer_count_suspect} != {self.layer_count_golden}"
            )
        return found

    @property
    def nominal(self) -> bool:
        return not self.anomalies()


def compare_traces(golden: PartTrace, suspect: PartTrace) -> PartQualityReport:
    """Build a :class:`PartQualityReport` from two deposition traces.

    Layers are matched by index after sorting by z, which tolerates uniform
    z offsets while still exposing spacing anomalies.
    """
    golden_layers = [layer for layer in golden.layers() if layer.extruded_mm > 0]
    suspect_layers = [layer for layer in suspect.layers() if layer.extruded_mm > 0]

    golden_total = golden.total_extruded_mm
    suspect_total = suspect.total_extruded_mm
    flow_ratio = suspect_total / golden_total if golden_total > 0 else math.nan

    shifts: List[float] = []
    bbox_growths: List[float] = []
    per_layer_flow: List[float] = []
    for g_layer, s_layer in zip(golden_layers, suspect_layers):
        gx, gy = g_layer.centroid
        sx, sy = s_layer.centroid
        if not (math.isnan(gx) or math.isnan(sx)):
            shifts.append(math.hypot(sx - gx, sy - gy))
        g_bbox, s_bbox = g_layer.bbox, s_layer.bbox
        width_growth = (s_bbox[2] - s_bbox[0]) - (g_bbox[2] - g_bbox[0])
        depth_growth = (s_bbox[3] - s_bbox[1]) - (g_bbox[3] - g_bbox[1])
        bbox_growths.append(max(width_growth, depth_growth))
        if g_layer.extruded_mm > 0:
            per_layer_flow.append(s_layer.extruded_mm / g_layer.extruded_mm)

    golden_spacings = golden.z_spacings()
    suspect_spacings = suspect.z_spacings()
    golden_spacing = (
        sorted(golden_spacings)[len(golden_spacings) // 2] if golden_spacings else 0.0
    )

    return PartQualityReport(
        flow_ratio=flow_ratio,
        max_centroid_shift_mm=max(shifts) if shifts else 0.0,
        mean_centroid_shift_mm=sum(shifts) / len(shifts) if shifts else 0.0,
        max_z_spacing_mm=max(suspect_spacings) if suspect_spacings else 0.0,
        golden_z_spacing_mm=golden_spacing,
        layer_count_golden=len(golden_layers),
        layer_count_suspect=len(suspect_layers),
        max_bbox_growth_mm=max(bbox_growths) if bbox_growths else 0.0,
        per_layer_flow_ratio=per_layer_flow,
    )
