"""The whole-machine plant: a Prusa-i3-MK3S-like printer's physics.

:class:`PrinterPlant` owns the axis mechanics, the hotend/bed thermal nodes,
the part-cooling fan state, and the deposition sampler. It exposes exactly
the interfaces the RAMPS board model drives (motor steps, heater power, fan
duty) and the interfaces the sensors read back (carriage positions for the
endstops, block temperatures for the thermistors) — closing the
cyber-physical loop the paper's test environment closes with real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PlantError
from repro.physics.deposition import PartTrace, TraceSample
from repro.physics.kinematics import AxisMechanics
from repro.physics.thermal import ThermalNode
from repro.sim.kernel import PeriodicTask, Simulator
from repro.sim.time import MS


@dataclass(frozen=True)
class PlantProfile:
    """Physical constants of the simulated machine.

    Defaults approximate the paper's modified Prusa i3 MK3S+: 100/100/400/280
    steps-per-mm drivetrain (at 16x microstepping), 250x210x210 mm build
    volume, a 50 W hotend cartridge and a 250 W bed. The thermal constants
    are tuned so heat-up transients take tens of simulated seconds — the same
    qualitative shape as the real machine without minutes of dead time.
    """

    steps_per_mm: Dict[str, float] = field(
        default_factory=lambda: {"X": 100.0, "Y": 100.0, "Z": 400.0, "E": 280.0}
    )
    travel_mm: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: {"X": (0.0, 250.0), "Y": (0.0, 210.0), "Z": (0.0, 210.0)}
    )
    start_position_mm: Dict[str, float] = field(
        default_factory=lambda: {"X": 15.0, "Y": 12.0, "Z": 3.0, "E": 0.0}
    )
    ambient_c: float = 25.0
    hotend_power_w: float = 50.0
    hotend_heat_capacity_j_per_k: float = 6.0
    hotend_loss_w_per_k: float = 0.17
    hotend_damage_c: float = 290.0
    bed_power_w: float = 250.0
    bed_heat_capacity_j_per_k: float = 120.0
    bed_loss_w_per_k: float = 1.4
    bed_damage_c: float = 135.0
    sample_period_ms: int = 20


class PrinterPlant:
    """The physical printer, driven by the RAMPS outputs."""

    def __init__(self, sim: Simulator, profile: Optional[PlantProfile] = None) -> None:
        self.sim = sim
        self.profile = profile or PlantProfile()
        prof = self.profile

        self.axes: Dict[str, AxisMechanics] = {}
        for axis, spm in prof.steps_per_mm.items():
            limits = prof.travel_mm.get(axis, (None, None))
            self.axes[axis] = AxisMechanics(
                axis,
                spm,
                min_mm=limits[0],
                max_mm=limits[1],
                start_mm=prof.start_position_mm.get(axis, 0.0),
            )

        self.hotend = ThermalNode(
            sim,
            "hotend",
            prof.hotend_heat_capacity_j_per_k,
            prof.hotend_loss_w_per_k,
            ambient_c=prof.ambient_c,
            damage_temp_c=prof.hotend_damage_c,
        )
        self.bed = ThermalNode(
            sim,
            "bed",
            prof.bed_heat_capacity_j_per_k,
            prof.bed_loss_w_per_k,
            ambient_c=prof.ambient_c,
            damage_temp_c=prof.bed_damage_c,
        )

        self.fan_duty = 0.0
        self.fan_profile: List[Tuple[int, float]] = [(sim.now, 0.0)]

        self.trace = PartTrace()
        self._sampler: Optional[PeriodicTask] = None

    # ------------------------------------------------------------------
    # Actuator-side interfaces (driven by the RAMPS model)
    # ------------------------------------------------------------------
    def motor_step(self, axis: str, direction: int, time_ns: int) -> None:
        """One accepted driver microstep on ``axis``."""
        try:
            mechanics = self.axes[axis]
        except KeyError:
            raise PlantError(f"unknown axis {axis!r}") from None
        mechanics.step(direction, time_ns)

    def can_batch_steps(self, axis: str, direction: int, count: int) -> bool:
        """True when ``count`` steps on ``axis`` can be applied in bulk."""
        mechanics = self.axes.get(axis)
        return mechanics is not None and mechanics.batch_ok(direction, count)

    def motor_step_batch(self, axis: str, direction: int, count: int, time_ns: int) -> None:
        """Apply a :meth:`can_batch_steps`-approved run of microsteps at once."""
        try:
            mechanics = self.axes[axis]
        except KeyError:
            raise PlantError(f"unknown axis {axis!r}") from None
        mechanics.step_batch(direction, count, time_ns)

    def set_hotend_power(self, power_w: float, time_ns: int) -> None:
        self.hotend.set_power(power_w, time_ns)

    def set_bed_power(self, power_w: float, time_ns: int) -> None:
        self.bed.set_power(power_w, time_ns)

    def set_fan_duty(self, duty: float, time_ns: int) -> None:
        duty = min(1.0, max(0.0, duty))
        if duty != self.fan_duty:
            self.fan_duty = duty
            self.fan_profile.append((time_ns, duty))

    # ------------------------------------------------------------------
    # Sensor-side interfaces (read by the RAMPS model)
    # ------------------------------------------------------------------
    def position_mm(self, axis: str) -> float:
        return self.axes[axis].position_mm

    def hotend_temp_c(self) -> float:
        return self.hotend.temperature_c()

    def bed_temp_c(self) -> float:
        return self.bed.temperature_c()

    # ------------------------------------------------------------------
    # Deposition sampling
    # ------------------------------------------------------------------
    def start_sampling(self) -> None:
        """Begin recording the deposition trace (idempotent)."""
        if self._sampler is None or self._sampler.cancelled:
            self._take_sample()
            self._sampler = self.sim.every(
                self.profile.sample_period_ms * MS, self._take_sample
            )

    def stop_sampling(self) -> None:
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None

    def _take_sample(self) -> None:
        self.trace.add_sample(
            TraceSample(
                time_ns=self.sim.now,
                x_mm=self.axes["X"].position_mm,
                y_mm=self.axes["Y"].position_mm,
                z_mm=self.axes["Z"].position_mm,
                e_mm=self.axes["E"].position_mm,
            )
        )

    # ------------------------------------------------------------------
    # Outcome summary
    # ------------------------------------------------------------------
    def mean_fan_duty(self, since_ns: int = 0) -> float:
        """Time-weighted average fan duty from ``since_ns`` to now."""
        end = self.sim.now
        if end <= since_ns:
            return self.fan_duty
        total = 0.0
        profile = self.fan_profile + [(end, self.fan_duty)]
        for (t0, duty), (t1, _) in zip(profile, profile[1:]):
            lo, hi = max(t0, since_ns), min(t1, end)
            if hi > lo:
                total += duty * (hi - lo)
        return total / (end - since_ns)

    @property
    def damaged(self) -> bool:
        """True if any heater crossed its damage threshold."""
        return self.hotend.damaged or self.bed.damaged

    def damage_summary(self) -> List[str]:
        lines = []
        for node in (self.hotend, self.bed):
            for event in node.damage_events:
                lines.append(
                    f"{event.node} exceeded damage threshold at "
                    f"{event.temperature_c:.1f}C (t={event.time_ns}ns)"
                )
        return lines
