"""Deposition trace: where material physically went, layer by layer.

The plant samples head position and extruder advance on a fixed period.
Post-processing groups extruding samples into layers and computes per-layer
statistics (extrusion-weighted centroid, bounding box, path length, filament
volume). The Table I experiments score Trojan effects by comparing these
statistics against a golden print — the simulation's replacement for the
paper's photographs of parts on graph paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceSample:
    """One sampled plant state: head position and extruder advance."""

    time_ns: int
    x_mm: float
    y_mm: float
    z_mm: float
    e_mm: float


@dataclass
class LayerStats:
    """Aggregate statistics of the material deposited in one layer."""

    z_mm: float
    extruded_mm: float = 0.0  # filament consumed in this layer
    path_mm: float = 0.0  # head travel while extruding
    min_x: float = math.inf
    max_x: float = -math.inf
    min_y: float = math.inf
    max_y: float = -math.inf
    _moment_x: float = 0.0
    _moment_y: float = 0.0

    def add_segment(self, x0: float, y0: float, x1: float, y1: float, de_mm: float) -> None:
        length = math.hypot(x1 - x0, y1 - y0)
        self.path_mm += length
        self.extruded_mm += de_mm
        mid_x, mid_y = (x0 + x1) / 2, (y0 + y1) / 2
        self._moment_x += mid_x * de_mm
        self._moment_y += mid_y * de_mm
        for x, y in ((x0, y0), (x1, y1)):
            self.min_x = min(self.min_x, x)
            self.max_x = max(self.max_x, x)
            self.min_y = min(self.min_y, y)
            self.max_y = max(self.max_y, y)

    @property
    def centroid(self) -> Tuple[float, float]:
        """Extrusion-weighted centroid of the deposited material."""
        if self.extruded_mm <= 0:
            return (math.nan, math.nan)
        return (self._moment_x / self.extruded_mm, self._moment_y / self.extruded_mm)

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        return (self.min_x, self.min_y, self.max_x, self.max_y)


class PartTrace:
    """The sampled history of one print, with layer-level post-processing."""

    def __init__(self, layer_quantum_mm: float = 0.02) -> None:
        self.samples: List[TraceSample] = []
        self.layer_quantum_mm = layer_quantum_mm
        self._layers: Optional[List[LayerStats]] = None

    def add_sample(self, sample: TraceSample) -> None:
        self.samples.append(sample)
        self._layers = None  # invalidate cache

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def total_extruded_mm(self) -> float:
        """Net filament advance over the whole print.

        Retract/prime cycles cancel out, so this is the material actually
        consumed — the quantity the Flaw3D reduction Trojan starves.
        """
        if len(self.samples) < 2:
            return 0.0
        return max(0.0, self.samples[-1].e_mm - self.samples[0].e_mm)

    @property
    def gross_extruded_mm(self) -> float:
        """Sum of positive filament advances (primes included).

        Differs from :attr:`total_extruded_mm` by the retraction traffic —
        useful for spotting retraction-tampering Trojans (T3).
        """
        total = 0.0
        for prev, cur in zip(self.samples, self.samples[1:]):
            delta = cur.e_mm - prev.e_mm
            if delta > 0:
                total += delta
        return total

    @property
    def duration_ns(self) -> int:
        if len(self.samples) < 2:
            return 0
        return self.samples[-1].time_ns - self.samples[0].time_ns

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def layers(self) -> List[LayerStats]:
        """Layer statistics, ordered by increasing z. Cached."""
        if self._layers is None:
            self._layers = self._build_layers()
        return self._layers

    def _build_layers(self) -> List[LayerStats]:
        by_z: Dict[int, LayerStats] = {}
        for prev, cur in zip(self.samples, self.samples[1:]):
            de = cur.e_mm - prev.e_mm
            if de <= 0:
                continue
            if abs(cur.z_mm - prev.z_mm) > 1e-9:
                continue  # z changed mid-segment: not a planar deposit
            key = round(cur.z_mm / self.layer_quantum_mm)
            stats = by_z.get(key)
            if stats is None:
                stats = LayerStats(z_mm=key * self.layer_quantum_mm)
                by_z[key] = stats
            stats.add_segment(prev.x_mm, prev.y_mm, cur.x_mm, cur.y_mm, de)
        return [by_z[key] for key in sorted(by_z)]

    def z_spacings(self) -> List[float]:
        """Gaps between consecutive deposited layers (delamination metric)."""
        layer_list = self.layers()
        return [
            round(b.z_mm - a.z_mm, 6) for a, b in zip(layer_list, layer_list[1:])
        ]

    def layer_centroid_drift(self) -> List[float]:
        """Per-layer centroid distance from the first layer's centroid.

        A rigid, well-built printer keeps this near zero for a prismatic
        part; Z-wobble and layer-shift Trojans make it jump.
        """
        layer_list = [layer for layer in self.layers() if layer.extruded_mm > 0]
        if not layer_list:
            return []
        cx0, cy0 = layer_list[0].centroid
        return [
            math.hypot(layer.centroid[0] - cx0, layer.centroid[1] - cy0)
            for layer in layer_list
        ]
