"""Abstract syntax for RepRap-dialect G-code.

A program is a list of :class:`Command` objects. Each command is a letter +
number (``G1``, ``M109``) with parameter words (``X10.5``, ``S200``), an
optional ``Nnnn`` line number, optional ``*checksum``, and an optional
trailing comment. Blank and comment-only lines are kept (as commands with
``letter=None``) so that serialization is lossless — the Flaw3D transforms
must be able to edit a file without otherwise disturbing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class Word:
    """A single parameter word: letter plus numeric value (``X10.5``)."""

    letter: str
    value: float

    def render(self) -> str:
        """Serialize losslessly: integers lose the decimal point, other
        values use ``repr`` (which round-trips floats exactly)."""
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return f"{self.letter}{int(self.value)}"
        return f"{self.letter}{self.value!r}"


@dataclass
class Command:
    """One G-code line.

    ``letter``/``code`` identify the command (``G``, 1). Comment-only or blank
    lines have ``letter=None``. Parameters preserve order of appearance.
    """

    letter: Optional[str] = None
    code: Optional[float] = None
    params: List[Word] = field(default_factory=list)
    comment: Optional[str] = None
    line_number: Optional[int] = None
    checksum: Optional[int] = None

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Canonical name like ``G1`` or ``M109``; empty for comment lines."""
        if self.letter is None or self.code is None:
            return ""
        if self.code == int(self.code):
            return f"{self.letter}{int(self.code)}"
        return f"{self.letter}{self.code:g}"

    def is_command(self, name: str) -> bool:
        """True if this line is the named command (e.g. ``cmd.is_command("G1")``)."""
        return self.name == name.upper()

    @property
    def is_move(self) -> bool:
        """True for linear move commands G0/G1."""
        return self.letter == "G" and self.code in (0.0, 1.0)

    @property
    def is_blank(self) -> bool:
        """True for blank or comment-only lines."""
        return self.letter is None

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def get(self, letter: str, default: Optional[float] = None) -> Optional[float]:
        """Value of the first parameter with ``letter``, or ``default``."""
        letter = letter.upper()
        for word in self.params:
            if word.letter == letter:
                return word.value
        return default

    def has(self, letter: str) -> bool:
        """True if a parameter with ``letter`` is present."""
        return self.get(letter) is not None

    def param_dict(self) -> Dict[str, float]:
        """Parameters as a dict (last occurrence wins for duplicates)."""
        return {word.letter: word.value for word in self.params}

    # ------------------------------------------------------------------
    # Functional-update helpers used by the malicious transforms
    # ------------------------------------------------------------------
    def with_param(self, letter: str, value: float) -> "Command":
        """Copy of this command with parameter ``letter`` set to ``value``.

        Replaces in place if present (keeping parameter order), appends
        otherwise.
        """
        letter = letter.upper()
        new_params: List[Word] = []
        replaced = False
        for word in self.params:
            if word.letter == letter and not replaced:
                new_params.append(Word(letter, float(value)))
                replaced = True
            else:
                new_params.append(word)
        if not replaced:
            new_params.append(Word(letter, float(value)))
        return Command(
            letter=self.letter,
            code=self.code,
            params=new_params,
            comment=self.comment,
            line_number=self.line_number,
            checksum=None,  # any edit invalidates a stored checksum
        )

    def without_param(self, letter: str) -> "Command":
        """Copy of this command with every ``letter`` parameter removed."""
        letter = letter.upper()
        return Command(
            letter=self.letter,
            code=self.code,
            params=[word for word in self.params if word.letter != letter],
            comment=self.comment,
            line_number=self.line_number,
            checksum=None,
        )

    def copy(self) -> "Command":
        """Deep-enough copy (Words are frozen)."""
        return replace(self, params=list(self.params))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.gcode.writer import write_line

        return f"<Command {write_line(self)!r}>"


@dataclass
class GcodeProgram:
    """An ordered G-code program, with convenience iteration over moves."""

    commands: List[Command] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self) -> Iterator[Command]:
        return iter(self.commands)

    def __getitem__(self, index):
        return self.commands[index]

    def append(self, command: Command) -> None:
        self.commands.append(command)

    def extend(self, commands: Iterable[Command]) -> None:
        self.commands.extend(commands)

    def moves(self) -> Iterator[Command]:
        """Iterate over G0/G1 move commands only."""
        return (cmd for cmd in self.commands if cmd.is_move)

    def executable(self) -> Iterator[Command]:
        """Iterate over non-blank commands."""
        return (cmd for cmd in self.commands if not cmd.is_blank)

    def count(self, name: str) -> int:
        """Number of occurrences of the named command."""
        return sum(1 for cmd in self.commands if cmd.is_command(name))

    def total_extrusion_mm(self) -> float:
        """Sum of positive relative-E deltas, assuming absolute E coordinates.

        Used by tests and the Flaw3D transforms to reason about flow without
        running the firmware. Handles ``G92 E0`` resets.
        """
        total = 0.0
        last_e = 0.0
        for cmd in self.commands:
            if cmd.is_command("G92") and cmd.has("E"):
                last_e = cmd.get("E", 0.0) or 0.0
                continue
            if cmd.is_move and cmd.has("E"):
                e = cmd.get("E", 0.0) or 0.0
                delta = e - last_e
                if delta > 0:
                    total += delta
                last_e = e
        return total
