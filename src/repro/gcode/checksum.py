"""RepRap host-protocol line checksums.

Hosts like Repetier send ``N<line> <command>*<checksum>`` where the checksum
is the XOR of every byte up to (not including) the ``*``. Marlin validates it
and requests a resend on mismatch. Both sides of that exchange live here so
the firmware's serial front-end and the host model share one implementation.
"""

from __future__ import annotations


def line_checksum(payload: str) -> int:
    """XOR-of-bytes checksum over ``payload`` (the text before the ``*``)."""
    checksum = 0
    for byte in payload.encode("ascii", errors="replace"):
        checksum ^= byte
    return checksum


def wrap_with_checksum(line_number: int, body: str) -> str:
    """Frame ``body`` as a numbered, checksummed protocol line.

    >>> wrap_with_checksum(3, "G28")
    'N3 G28*28'
    """
    payload = f"N{line_number} {body}"
    return f"{payload}*{line_checksum(payload)}"


def split_checksum(line: str) -> tuple:
    """Split ``line`` into (payload, checksum-or-None).

    Only the *last* ``*`` is treated as the checksum delimiter; G-code bodies
    never contain ``*`` otherwise, but comments were stripped by the caller.
    """
    if "*" not in line:
        return line, None
    payload, _, tail = line.rpartition("*")
    tail = tail.strip()
    if not tail.isdigit():
        return line, None
    return payload, int(tail)
