"""Tokenizer for one line of RepRap G-code.

Splits a raw line into (line_number, words, checksum, comment). Comments come
in two forms: ``; to end of line`` and parenthesised ``(inline)``; both are
captured. Words are letter+number with optional sign/decimal/exponent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import GcodeError

# The numeric part is optional: bare parameter letters are legal ("G28 X"
# homes X only) and read as value 0, matching Marlin's parser.
_WORD_RE = re.compile(r"([A-Za-z])\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)?")
_NUMBER_ONLY_RE = re.compile(r"^[+-]?(?:\d+\.?\d*|\.\d+)$")


@dataclass(frozen=True)
class LexedLine:
    """The tokenized form of one raw G-code line."""

    line_number: Optional[int]
    words: List[tuple]  # (letter, float value) in order of appearance
    checksum: Optional[int]
    comment: Optional[str]


def strip_comments(line: str) -> tuple:
    """Remove comments from ``line``; return (code_text, comment_text_or_None).

    Both ``;`` and balanced ``( ... )`` comments are supported; multiple
    comments are joined with a space, matching how slicers annotate lines.
    """
    comments: List[str] = []
    out: List[str] = []
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch == ";":
            comments.append(line[i + 1 :].strip())
            break
        if ch == "(":
            close = line.find(")", i + 1)
            if close == -1:
                raise GcodeError(f"unterminated '(' comment in line: {line!r}")
            comments.append(line[i + 1 : close].strip())
            i = close + 1
            continue
        out.append(ch)
        i += 1
    comment = " ".join(c for c in comments if c) if comments else None
    if comments and comment is None:
        comment = ""  # an empty comment is still a comment line
    return "".join(out), comment


def lex_line(raw: str) -> LexedLine:
    """Tokenize one raw line.

    Raises :class:`~repro.errors.GcodeError` on malformed input (stray
    characters that are neither words, comments, nor a checksum).
    """
    code_text, comment = strip_comments(raw.rstrip("\r\n"))

    # Checksum: everything after the last '*' (validated by the parser).
    checksum: Optional[int] = None
    if "*" in code_text:
        body, _, tail = code_text.rpartition("*")
        tail = tail.strip()
        if not _NUMBER_ONLY_RE.match(tail or ""):
            raise GcodeError(f"malformed checksum field in line: {raw!r}")
        checksum = int(float(tail))
        code_text = body

    words: List[tuple] = []
    consumed = []
    for match in _WORD_RE.finditer(code_text):
        if not match.group(1):
            continue
        number = match.group(2)
        words.append((match.group(1).upper(), float(number) if number else 0.0))
        consumed.append((match.start(), match.end()))

    # Anything outside matched words must be whitespace.
    cursor = 0
    for start, end in consumed:
        gap = code_text[cursor:start]
        if gap.strip():
            raise GcodeError(f"unrecognized text {gap.strip()!r} in line: {raw!r}")
        cursor = end
    if code_text[cursor:].strip():
        raise GcodeError(f"unrecognized text {code_text[cursor:].strip()!r} in line: {raw!r}")

    line_number: Optional[int] = None
    if words and words[0][0] == "N":
        value = words[0][1]
        if value != int(value) or value < 0:
            raise GcodeError(f"invalid line number {value} in line: {raw!r}")
        line_number = int(value)
        words = words[1:]

    return LexedLine(line_number=line_number, words=words, checksum=checksum, comment=comment)
