"""Flaw3D bootloader Trojans, re-created as G-code rewrites (Table II).

The original attack (Pearce et al., "FLAW3D") hides in the AVR bootloader and
edits G-code as it streams to the firmware. The OFFRAMPS paper emulated both
Trojan families with a Python script that rewrites the file the same way; this
module is that script:

* **Reduction** — every positive extrusion delta is multiplied by ``factor``
  (0.5 … 0.98 in Table II), starving the part of material while leaving the
  motion unchanged.
* **Relocation** — every ``period``-th extruding move has its filament
  withheld and then deposited in place immediately afterwards (``period`` is
  Table II's "number of movements before filament is relocated"). Total
  extrusion is preserved but both the deposit locations and the print timeline
  shift, which is what the detector's transaction mismatches pick up
  (Figure 4 shows X-axis mismatches for relocation, not E).

Both transforms rebuild the absolute-E coordinate chain so the emitted
program remains well-formed for any Marlin-compatible consumer, and both
handle ``G92 E`` resets and retraction (negative deltas pass through
unscaled — the bootloader attacked extrusion, not retraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import GcodeError
from repro.gcode.ast import Command, GcodeProgram, Word

# In-place deposit speed for relocated filament. The bootloader dumps the
# withheld material as a controlled blob; 300 mm/min (5 mm/s of filament) is
# slow enough not to skip the extruder. The pause this adds is also the
# timeline shift the paper's detector picks up as X/Y mismatches.
RELOCATE_FEEDRATE_MM_MIN = 300
_E_DECIMALS = 5


class _EChain:
    """Tracks input-vs-output absolute E while rewriting a program."""

    def __init__(self) -> None:
        self.last_in_e = 0.0
        self.out_e = 0.0

    def reset(self, value: float) -> None:
        self.last_in_e = value
        self.out_e = value

    def consume(self, in_e: float) -> float:
        """Return the input delta implied by the next absolute E value."""
        delta = in_e - self.last_in_e
        self.last_in_e = in_e
        return delta

    def emit(self, out_delta: float) -> float:
        """Advance the output chain by ``out_delta``; return new absolute E."""
        self.out_e = round(self.out_e + out_delta, _E_DECIMALS)
        return self.out_e


@dataclass(frozen=True)
class Flaw3dReduction:
    """Reduction Trojan: extrusion deltas multiplied by ``factor`` ∈ (0, 1]."""

    factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise GcodeError(f"reduction factor must be in (0, 1], got {self.factor}")

    @property
    def label(self) -> str:
        return f"flaw3d-reduction-{self.factor:g}"

    def apply(self, program: GcodeProgram) -> GcodeProgram:
        chain = _EChain()
        out = GcodeProgram()
        for cmd in program:
            rewritten = _rewrite_e(cmd, chain, self._scale_delta)
            out.append(rewritten)
        return out

    def _scale_delta(self, cmd: Command, delta: float) -> float:
        # Only printing extrusion is starved; retraction and its matching
        # prime (E-only moves) pass through so the filament stays primed —
        # the bootloader Trojan attacked deposited material, not retraction.
        if delta > 0 and (cmd.has("X") or cmd.has("Y")):
            return delta * self.factor
        return delta


@dataclass(frozen=True)
class Flaw3dRelocation:
    """Relocation Trojan: every ``period``-th extruding move is starved and
    its filament deposited in place right after the move completes."""

    period: int
    deposit_feedrate_mm_min: float = RELOCATE_FEEDRATE_MM_MIN

    def __post_init__(self) -> None:
        if self.period < 1:
            raise GcodeError(f"relocation period must be >= 1, got {self.period}")
        if self.deposit_feedrate_mm_min <= 0:
            raise GcodeError("deposit feedrate must be positive")

    @property
    def label(self) -> str:
        return f"flaw3d-relocation-{self.period}"

    def apply(self, program: GcodeProgram) -> GcodeProgram:
        chain = _EChain()
        out = GcodeProgram()
        extruding_moves = 0
        for cmd in program:
            if cmd.is_command("G92") and cmd.has("E"):
                chain.reset(cmd.get("E", 0.0) or 0.0)
                out.append(cmd.copy())
                continue
            if not (cmd.is_move and cmd.has("E")):
                out.append(cmd.copy())
                continue

            delta = chain.consume(cmd.get("E") or 0.0)
            is_printing_move = delta > 0 and (cmd.has("X") or cmd.has("Y"))
            if is_printing_move:
                extruding_moves += 1
                if extruding_moves % self.period == 0:
                    # Starve the move (it becomes a travel at the same speed)
                    # then deposit the withheld filament in place.
                    out.append(cmd.without_param("E"))
                    deposit_e = chain.emit(delta)
                    out.append(
                        Command(
                            letter="G",
                            code=1.0,
                            params=[
                                Word("E", deposit_e),
                                Word("F", float(self.deposit_feedrate_mm_min)),
                            ],
                            comment="relocated filament",
                        )
                    )
                    continue
            out.append(cmd.with_param("E", chain.emit(delta)))
        return out


def _rewrite_e(cmd: Command, chain: _EChain, delta_fn) -> Command:
    """Shared walker: recompute one command's absolute E through ``delta_fn``.

    ``delta_fn(cmd, in_delta) -> out_delta`` decides how much filament the
    rewritten command moves.
    """
    if cmd.is_command("G92") and cmd.has("E"):
        chain.reset(cmd.get("E", 0.0) or 0.0)
        return cmd.copy()
    if cmd.is_move and cmd.has("E"):
        delta = chain.consume(cmd.get("E") or 0.0)
        return cmd.with_param("E", chain.emit(delta_fn(cmd, delta)))
    return cmd.copy()


def apply_reduction(program: GcodeProgram, factor: float) -> GcodeProgram:
    """Apply a Flaw3D reduction Trojan with the given ``factor``."""
    return Flaw3dReduction(factor).apply(program)


def apply_relocation(program: GcodeProgram, period: int) -> GcodeProgram:
    """Apply a Flaw3D relocation Trojan with the given ``period``."""
    return Flaw3dRelocation(period).apply(program)


def table2_test_cases() -> List[tuple]:
    """The eight Table II test cases as (case_number, transform) pairs."""
    return [
        (1, Flaw3dReduction(0.5)),
        (2, Flaw3dReduction(0.85)),
        (3, Flaw3dReduction(0.9)),
        (4, Flaw3dReduction(0.98)),
        (5, Flaw3dRelocation(5)),
        (6, Flaw3dRelocation(10)),
        (7, Flaw3dRelocation(20)),
        (8, Flaw3dRelocation(100)),
    ]
