"""Malicious G-code transforms.

These are the *attack* implementations the paper evaluates its detection
against: the Flaw3D bootloader Trojans (Table II) re-created as G-code
rewrites — exactly how the paper itself emulated them ("We recreate these
Trojans using a Python script which modifies given g-code in the same way
the malicious bootloader does") — plus dr0wned-style geometry edits.
"""

from repro.gcode.transforms.edits import insert_void, scale_moves
from repro.gcode.transforms.flaw3d import (
    Flaw3dReduction,
    Flaw3dRelocation,
    apply_reduction,
    apply_relocation,
)

__all__ = [
    "Flaw3dReduction",
    "Flaw3dRelocation",
    "apply_reduction",
    "apply_relocation",
    "insert_void",
    "scale_moves",
]
