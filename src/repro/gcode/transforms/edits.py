"""dr0wned-style malicious geometry edits.

The dr0wned attack (Belikovetsky et al.) modified design files before
slicing, inserting sub-millimetre voids at stress points. Operating on sliced
G-code, the closest equivalents are: starving extrusion inside a 3-D region
(a void), and rescaling coordinates (a dimensional attack). These supplement
the Flaw3D transforms to round out the attack library the paper's platform is
meant to study.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import GcodeError
from repro.gcode.ast import Command, GcodeProgram, Word

Region = Tuple[float, float, float, float, float, float]  # xmin,ymin,zmin,xmax,ymax,zmax

_E_DECIMALS = 5


def _clip_segment(
    x0: float, y0: float, x1: float, y1: float, region: Region
) -> Optional[Tuple[float, float]]:
    """Liang-Barsky: the parametric sub-interval of the segment inside the
    region's XY rectangle, or None if it misses entirely."""
    xmin, ymin, _, xmax, ymax, _ = region
    dx, dy = x1 - x0, y1 - y0
    t_enter, t_exit = 0.0, 1.0
    for p, q in (
        (-dx, x0 - xmin),
        (dx, xmax - x0),
        (-dy, y0 - ymin),
        (dy, ymax - y0),
    ):
        if p == 0:
            if q < 0:
                return None  # parallel and outside
            continue
        t = q / p
        if p < 0:
            t_enter = max(t_enter, t)
        else:
            t_exit = min(t_exit, t)
        if t_enter > t_exit:
            return None
    if t_exit - t_enter <= 1e-9:
        return None
    return (t_enter, t_exit)


def insert_void(program: GcodeProgram, region: Region) -> GcodeProgram:
    """Starve extrusion wherever a printing move crosses ``region``.

    Moves are *split* at the region boundary: material is deposited up to the
    void, the head travels through it dry, and deposition resumes beyond it —
    the head's path is unchanged (dr0wned's stealth), only the material is
    missing. Absolute E values are rebuilt to stay consistent.
    """
    xmin, ymin, zmin, xmax, ymax, zmax = region
    if xmin > xmax or ymin > ymax or zmin > zmax:
        raise GcodeError(f"malformed void region {region!r}")

    out = GcodeProgram()
    last_in_e = 0.0
    out_e = 0.0
    x = y = z = 0.0

    def emit_sub_move(
        template: Command, to_x: float, to_y: float, e_delta: float, comment=None
    ) -> None:
        nonlocal out_e
        params: List[Word] = []
        params.append(Word("X", round(to_x, 3)))
        params.append(Word("Y", round(to_y, 3)))
        if e_delta > 0:
            out_e = round(out_e + e_delta, _E_DECIMALS)
            params.append(Word("E", out_e))
        if template.has("F"):
            params.append(Word("F", template.get("F")))
        out.append(
            Command(letter="G", code=1.0, params=params, comment=comment)
        )

    for cmd in program:
        if cmd.is_command("G92") and cmd.has("E"):
            value = cmd.get("E", 0.0) or 0.0
            last_in_e = value
            out_e = value
            out.append(cmd.copy())
            continue
        if not cmd.is_move:
            out.append(cmd.copy())
            continue

        prev_x, prev_y = x, y
        x = cmd.get("X", x) if cmd.has("X") else x
        y = cmd.get("Y", y) if cmd.has("Y") else y
        z = cmd.get("Z", z) if cmd.has("Z") else z

        if not cmd.has("E"):
            out.append(cmd.copy())
            continue

        in_e = cmd.get("E") or 0.0
        delta = in_e - last_in_e
        last_in_e = in_e

        in_z_band = zmin <= z <= zmax
        clip = (
            _clip_segment(prev_x, prev_y, x, y, region)
            if (delta > 0 and in_z_band and (cmd.has("X") or cmd.has("Y")))
            else None
        )
        if clip is None:
            out_e = round(out_e + delta, _E_DECIMALS)
            out.append(cmd.with_param("E", out_e))
            continue

        # Split the move: deposit / dry travel / deposit.
        t_enter, t_exit = clip
        point = lambda t: (prev_x + (x - prev_x) * t, prev_y + (y - prev_y) * t)  # noqa: E731
        if t_enter > 1e-9:
            px, py = point(t_enter)
            emit_sub_move(cmd, px, py, delta * t_enter)
        vx, vy = point(t_exit)
        emit_sub_move(cmd, vx, vy, 0.0, comment="void")
        if t_exit < 1.0 - 1e-9:
            emit_sub_move(cmd, x, y, delta * (1.0 - t_exit))
    return out


def scale_moves(
    program: GcodeProgram,
    scale: float,
    center: Optional[Tuple[float, float]] = None,
) -> GcodeProgram:
    """Scale all X/Y coordinates about ``center`` (default: their centroid).

    A crude dimensional attack: the part prints at the wrong size while every
    command stream statistic (counts, structure) looks plausible.
    """
    if scale <= 0:
        raise GcodeError(f"scale must be positive, got {scale}")

    if center is None:
        xs = [cmd.get("X") for cmd in program.moves() if cmd.has("X")]
        ys = [cmd.get("Y") for cmd in program.moves() if cmd.has("Y")]
        if not xs or not ys:
            raise GcodeError("program has no X/Y moves to scale")
        center = (sum(xs) / len(xs), sum(ys) / len(ys))

    cx, cy = center
    out = GcodeProgram()
    for cmd in program:
        if cmd.is_move and (cmd.has("X") or cmd.has("Y")):
            new_cmd = cmd.copy()
            if cmd.has("X"):
                new_cmd = new_cmd.with_param("X", round(cx + (cmd.get("X") - cx) * scale, 3))
            if cmd.has("Y"):
                new_cmd = new_cmd.with_param("Y", round(cy + (cmd.get("Y") - cy) * scale, 3))
            out.append(new_cmd)
            continue
        out.append(cmd.copy())
    return out
