"""2-D polygon primitives for the miniature slicer.

Polygons are lists of ``(x, y)`` tuples, implicitly closed, in counter-
clockwise orientation (enforced by :func:`ensure_ccw`). The slicer needs only
three non-trivial operations: convex insetting (for perimeter loops),
scanline clipping (for rectilinear infill), and point containment (for tests).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import SlicerError

Point = Tuple[float, float]
Polygon = List[Point]

_EPS = 1e-9


def polygon_area(poly: Sequence[Point]) -> float:
    """Signed area via the shoelace formula (positive for CCW)."""
    if len(poly) < 3:
        return 0.0
    total = 0.0
    for i, (x0, y0) in enumerate(poly):
        x1, y1 = poly[(i + 1) % len(poly)]
        total += x0 * y1 - x1 * y0
    return total / 2.0


def ensure_ccw(poly: Sequence[Point]) -> Polygon:
    """Return ``poly`` with counter-clockwise winding."""
    points = [(float(x), float(y)) for x, y in poly]
    if polygon_area(points) < 0:
        points.reverse()
    return points


def polygon_perimeter(poly: Sequence[Point]) -> float:
    """Total boundary length of the closed polygon."""
    total = 0.0
    for i, (x0, y0) in enumerate(poly):
        x1, y1 = poly[(i + 1) % len(poly)]
        total += math.hypot(x1 - x0, y1 - y0)
    return total


def polygon_bbox(poly: Sequence[Point]) -> Tuple[float, float, float, float]:
    """Axis-aligned bounding box as (xmin, ymin, xmax, ymax)."""
    if not poly:
        raise SlicerError("bounding box of an empty polygon")
    xs = [p[0] for p in poly]
    ys = [p[1] for p in poly]
    return min(xs), min(ys), max(xs), max(ys)


def is_convex(poly: Sequence[Point]) -> bool:
    """True if the polygon is convex (collinear runs allowed)."""
    n = len(poly)
    if n < 3:
        return False
    sign = 0
    for i in range(n):
        x0, y0 = poly[i]
        x1, y1 = poly[(i + 1) % n]
        x2, y2 = poly[(i + 2) % n]
        cross = (x1 - x0) * (y2 - y1) - (y1 - y0) * (x2 - x1)
        if abs(cross) < _EPS:
            continue
        this_sign = 1 if cross > 0 else -1
        if sign == 0:
            sign = this_sign
        elif sign != this_sign:
            return False
    return True


def point_in_polygon(point: Point, poly: Sequence[Point]) -> bool:
    """Even-odd containment test (points on the boundary count as inside)."""
    x, y = point
    inside = False
    n = len(poly)
    for i in range(n):
        x0, y0 = poly[i]
        x1, y1 = poly[(i + 1) % n]
        # Boundary check: is the point on segment (p0, p1)?
        cross = (x1 - x0) * (y - y0) - (y1 - y0) * (x - x0)
        if abs(cross) < 1e-7:
            if min(x0, x1) - 1e-7 <= x <= max(x0, x1) + 1e-7 and (
                min(y0, y1) - 1e-7 <= y <= max(y0, y1) + 1e-7
            ):
                return True
        if (y0 > y) != (y1 > y):
            x_cross = x0 + (y - y0) * (x1 - x0) / (y1 - y0)
            if x_cross > x:
                inside = not inside
    return inside


def inset_convex(poly: Sequence[Point], distance: float) -> Polygon:
    """Shrink a convex CCW polygon inward by ``distance``.

    Each edge is translated along its inward normal; consecutive offset edges
    are re-intersected. Raises :class:`~repro.errors.SlicerError` if the inset
    collapses the polygon (offset larger than the inradius) or the polygon is
    not convex.
    """
    points = ensure_ccw(poly)
    if not is_convex(points):
        raise SlicerError("inset_convex requires a convex polygon")
    if distance < 0:
        raise SlicerError(f"inset distance must be >= 0, got {distance}")
    if distance == 0:
        return list(points)

    n = len(points)
    offset_lines = []  # (point_on_line, direction) per edge
    for i in range(n):
        x0, y0 = points[i]
        x1, y1 = points[(i + 1) % n]
        dx, dy = x1 - x0, y1 - y0
        length = math.hypot(dx, dy)
        if length < _EPS:
            continue
        # Inward normal for a CCW polygon is the left normal of the edge.
        nx, ny = -dy / length, dx / length
        offset_lines.append(((x0 + nx * distance, y0 + ny * distance), (dx, dy)))

    m = len(offset_lines)
    if m < 3:
        raise SlicerError("degenerate polygon for inset")

    result: Polygon = []
    for i in range(m):
        (p0, d0) = offset_lines[i - 1]
        (p1, d1) = offset_lines[i]
        denom = d0[0] * d1[1] - d0[1] * d1[0]
        if abs(denom) < _EPS:
            # Parallel consecutive edges (collinear input): keep offset point.
            result.append(p1)
            continue
        t = ((p1[0] - p0[0]) * d1[1] - (p1[1] - p0[1]) * d1[0]) / denom
        result.append((p0[0] + d0[0] * t, p0[1] + d0[1] * t))

    if polygon_area(result) < _EPS or polygon_area(result) > polygon_area(points):
        raise SlicerError(f"inset by {distance} collapsed the polygon")
    # An over-large inset can invert the polygon while keeping positive area
    # (edges cross and reverse). result[i] sits on offset line i, so the edge
    # result[i] -> result[i+1] must still point along that line's direction.
    for i in range(len(result)):
        edge = (
            result[(i + 1) % len(result)][0] - result[i][0],
            result[(i + 1) % len(result)][1] - result[i][1],
        )
        direction = offset_lines[i][1]
        if edge[0] * direction[0] + edge[1] * direction[1] < -_EPS:
            raise SlicerError(f"inset by {distance} collapsed the polygon")
    return result


def clip_scanline(poly: Sequence[Point], y: float) -> List[Tuple[float, float]]:
    """Intersect the horizontal line at ``y`` with the polygon interior.

    Returns a sorted list of ``(x_start, x_end)`` spans inside the polygon,
    using even-odd crossing counting. Works for concave polygons too, which is
    why infill supports shapes the convex inset cannot.
    """
    crossings: List[float] = []
    n = len(poly)
    for i in range(n):
        x0, y0 = poly[i]
        x1, y1 = poly[(i + 1) % n]
        if (y0 > y) != (y1 > y):
            crossings.append(x0 + (y - y0) * (x1 - x0) / (y1 - y0))
    crossings.sort()
    spans = []
    for i in range(0, len(crossings) - 1, 2):
        if crossings[i + 1] - crossings[i] > _EPS:
            spans.append((crossings[i], crossings[i + 1]))
    return spans


def rotate_polygon(poly: Sequence[Point], angle_rad: float, center: Point = (0.0, 0.0)) -> Polygon:
    """Rotate a polygon about ``center`` (used for alternating infill angles)."""
    cos_a, sin_a = math.cos(angle_rad), math.sin(angle_rad)
    cx, cy = center
    out: Polygon = []
    for x, y in poly:
        dx, dy = x - cx, y - cy
        out.append((cx + dx * cos_a - dy * sin_a, cy + dx * sin_a + dy * cos_a))
    return out
