"""Layered path generation: shapes → G-code programs.

The output structure follows what mainstream slicers emit and what the
paper's prints used (sliced with Ultimaker Cura): heat-and-wait preamble,
``G28`` homing, per-layer perimeter loops then rectilinear infill with
serpentine scan order, retraction on long travels, absolute E with per-layer
``G92 E0`` resets, and a parking/shutdown epilogue. Everything is
deterministic: the same shape + profile always yields byte-identical G-code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SlicerError
from repro.gcode.ast import Command, GcodeProgram, Word
from repro.gcode.slicer.geometry import (
    Polygon,
    clip_scanline,
    ensure_ccw,
    inset_convex,
    is_convex,
    polygon_bbox,
)
from repro.gcode.slicer.profiles import PrintProfile
from repro.gcode.slicer.shapes import Shape

Point = Tuple[float, float]

_COORD_DECIMALS = 3
_E_DECIMALS = 5


def _round_coord(value: float) -> float:
    return round(value, _COORD_DECIMALS)


def _round_e(value: float) -> float:
    return round(value, _E_DECIMALS)


@dataclass
class SliceResult:
    """A sliced part: the program plus summary statistics."""

    program: GcodeProgram
    shape_name: str
    layer_count: int
    extruded_path_mm: float
    travel_path_mm: float
    filament_mm: float
    layer_heights: List[float] = field(default_factory=list)

    @property
    def command_count(self) -> int:
        return sum(1 for _ in self.program.executable())


class Slicer:
    """Deterministic miniature slicer. One instance per profile."""

    def __init__(self, profile: Optional[PrintProfile] = None) -> None:
        self.profile = profile or PrintProfile()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def slice(self, shape: Shape) -> SliceResult:
        """Slice ``shape`` into a complete printable G-code program."""
        profile = self.profile
        if shape.height_mm <= 0:
            raise SlicerError(f"shape {shape.name!r} has no height")

        builder = _ProgramBuilder(profile)
        builder.preamble(shape.name)

        layer_heights = self._layer_heights(shape.height_mm)
        z = 0.0
        for layer_index, layer_height in enumerate(layer_heights):
            z += layer_height
            outline = ensure_ccw(shape.outline_at(z - layer_height / 2))
            builder.begin_layer(layer_index, z, layer_height)
            self._slice_layer(builder, outline, layer_index, layer_height)
        builder.epilogue()

        return SliceResult(
            program=builder.program,
            shape_name=shape.name,
            layer_count=len(layer_heights),
            extruded_path_mm=builder.extruded_path_mm,
            travel_path_mm=builder.travel_path_mm,
            filament_mm=builder.total_filament_mm,
            layer_heights=layer_heights,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _layer_heights(self, total_height: float) -> List[float]:
        profile = self.profile
        heights = [profile.first_layer_height_mm]
        remaining = total_height - profile.first_layer_height_mm
        while remaining > profile.layer_height_mm * 0.25:
            height = min(profile.layer_height_mm, remaining)
            heights.append(height)
            remaining -= height
        return heights

    def _slice_layer(
        self,
        builder: "_ProgramBuilder",
        outline: Polygon,
        layer_index: int,
        layer_height: float,
    ) -> None:
        profile = self.profile
        speed = (
            profile.first_layer_speed_mm_s if layer_index == 0 else profile.print_speed_mm_s
        )

        # Perimeter loops: inset by half a width for the outermost, then a
        # full width per additional loop. Concave outlines get a single
        # on-outline trace (documented scope of the convex inset engine).
        loops: List[Polygon] = []
        innermost = outline
        if is_convex(outline):
            for loop_index in range(profile.perimeter_count):
                inset = profile.extrusion_width_mm * (0.5 + loop_index)
                try:
                    loop = inset_convex(outline, inset)
                except SlicerError:
                    break
                loops.append(loop)
                innermost = loop
        elif profile.perimeter_count > 0:
            loops.append(list(outline))

        for loop in loops:
            builder.extrude_loop(loop, layer_height, speed)

        infill_boundary = innermost
        if is_convex(infill_boundary):
            try:
                infill_boundary = inset_convex(
                    infill_boundary, profile.extrusion_width_mm * 0.5
                )
            except SlicerError:
                return  # too small to infill
        self._infill(builder, infill_boundary, layer_index, layer_height, speed)

    def _infill(
        self,
        builder: "_ProgramBuilder",
        boundary: Polygon,
        layer_index: int,
        layer_height: float,
        speed: float,
    ) -> None:
        """Rectilinear serpentine infill, alternating X/Y orientation by layer."""
        profile = self.profile
        along_x = layer_index % 2 == 0
        poly = boundary if along_x else [(y, x) for x, y in boundary]
        _, smin, _, smax = polygon_bbox(poly)

        spacing = profile.infill_spacing_mm
        lines: List[Tuple[Point, Point]] = []
        scan = smin + spacing / 2
        flip = False
        while scan < smax:
            for x0, x1 in clip_scanline(poly, scan):
                if x1 - x0 < profile.extrusion_width_mm:
                    continue
                a, b = (x0, scan), (x1, scan)
                if flip:
                    a, b = b, a
                if not along_x:
                    a, b = (a[1], a[0]), (b[1], b[0])
                lines.append((a, b))
            flip = not flip
            scan += spacing

        for start, end in lines:
            builder.travel_to(start)
            builder.extrude_path([start, end], layer_height, speed)


class _ProgramBuilder:
    """Accumulates G-code commands while tracking position and extrusion."""

    def __init__(self, profile: PrintProfile) -> None:
        self.profile = profile
        self.program = GcodeProgram()
        self.position: Optional[Point] = None
        self.z = 0.0
        self.e = 0.0
        self.retracted = False
        self.extruded_path_mm = 0.0
        self.travel_path_mm = 0.0
        self.total_filament_mm = 0.0

    # -- low-level emit helpers ---------------------------------------
    def _cmd(self, name: str, comment: Optional[str] = None, **params: float) -> None:
        letter, code = name[0], float(name[1:])
        words = [Word(k.upper(), float(v)) for k, v in params.items()]
        self.program.append(Command(letter=letter, code=code, params=words, comment=comment))

    def _comment(self, text: str) -> None:
        self.program.append(Command(comment=text))

    # -- structural sections ------------------------------------------
    def preamble(self, shape_name: str) -> None:
        profile = self.profile
        self._comment(f"sliced by repro mini-slicer: {shape_name}")
        self._comment(
            f"layer_height={profile.layer_height_mm} extrusion_width={profile.extrusion_width_mm}"
        )
        self._cmd("M140", s=profile.bed_temp_c, comment="set bed temp")
        self._cmd("M104", s=profile.hotend_temp_c, comment="set hotend temp")
        self._cmd("M190", s=profile.bed_temp_c, comment="wait for bed temp")
        self._cmd("M109", s=profile.hotend_temp_c, comment="wait for hotend temp")
        self._cmd("G90", comment="absolute positioning")
        self._cmd("M82", comment="absolute extrusion")
        self._cmd("G28", comment="home all axes")
        self._cmd("G92", e=0.0, comment="reset extrusion")

    def begin_layer(self, layer_index: int, z: float, layer_height: float) -> None:
        self._comment(f"LAYER:{layer_index} z={_round_coord(z)}")
        if layer_index == 1 and self.profile.fan_duty > 0:
            self._cmd("M106", s=round(self.profile.fan_duty * 255), comment="part fan on")
        self.z = z
        self._cmd("G1", z=_round_coord(z), f=round(self.profile.travel_speed_mm_s * 60))
        self._cmd("G92", e=0.0)
        self.e = 0.0

    def epilogue(self) -> None:
        profile = self.profile
        self._comment("end of print")
        self._retract()
        self._cmd("G1", z=_round_coord(self.z + 5.0), f=round(profile.travel_speed_mm_s * 60))
        self._cmd("G1", x=5.0, y=5.0, f=round(profile.travel_speed_mm_s * 60), comment="park")
        self._cmd("M104", s=0, comment="hotend off")
        self._cmd("M140", s=0, comment="bed off")
        self._cmd("M107", comment="fan off")
        self._cmd("M84", comment="disable steppers")

    # -- motion ---------------------------------------------------------
    def travel_to(self, point: Point) -> None:
        """Non-extruding move, retracting first when the hop is long enough."""
        if self.position is not None:
            distance = math.hypot(point[0] - self.position[0], point[1] - self.position[1])
            if distance < 1e-9:
                return
            if distance >= self.profile.retraction_min_travel_mm:
                self._retract()
            self.travel_path_mm += distance
        self._cmd(
            "G0",
            x=_round_coord(point[0]),
            y=_round_coord(point[1]),
            f=round(self.profile.travel_speed_mm_s * 60),
        )
        self.position = point

    def extrude_loop(self, loop: Polygon, layer_height: float, speed: float) -> None:
        points = list(loop) + [loop[0]]
        self.travel_to(points[0])
        self.extrude_path(points, layer_height, speed)

    def extrude_path(self, points: List[Point], layer_height: float, speed: float) -> None:
        if self.position is None:
            raise SlicerError("extrude_path before any positioning move")
        if math.hypot(
            points[0][0] - self.position[0], points[0][1] - self.position[1]
        ) > 1e-6:
            self.travel_to(points[0])
        self._unretract()
        e_per_mm = self.profile.extrusion_per_mm(layer_height)
        for point in points[1:]:
            distance = math.hypot(point[0] - self.position[0], point[1] - self.position[1])
            if distance < 1e-9:
                continue
            self.e += distance * e_per_mm
            self.extruded_path_mm += distance
            self.total_filament_mm += distance * e_per_mm
            self._cmd(
                "G1",
                x=_round_coord(point[0]),
                y=_round_coord(point[1]),
                e=_round_e(self.e),
                f=round(speed * 60),
            )
            self.position = point

    # -- retraction -----------------------------------------------------
    def _retract(self) -> None:
        if self.retracted or self.profile.retraction_length_mm <= 0:
            return
        self.e -= self.profile.retraction_length_mm
        self._cmd(
            "G1",
            e=_round_e(self.e),
            f=round(self.profile.retraction_speed_mm_s * 60),
            comment="retract",
        )
        self.retracted = True

    def _unretract(self) -> None:
        if not self.retracted:
            return
        self.e += self.profile.retraction_length_mm
        self._cmd(
            "G1",
            e=_round_e(self.e),
            f=round(self.profile.retraction_speed_mm_s * 60),
            comment="unretract",
        )
        self.retracted = False


def slice_shape(shape: Shape, profile: Optional[PrintProfile] = None) -> SliceResult:
    """Convenience wrapper: slice ``shape`` with ``profile`` (or defaults)."""
    return Slicer(profile).slice(shape)
