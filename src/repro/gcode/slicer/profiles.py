"""Print profiles: the slicer-side settings a Cura profile would hold.

The defaults approximate a PLA draft profile for a Prusa i3 MK3S+ class
machine — the printer the paper's test environment used — scaled down in
temperature-wait realism knobs so simulated prints stay short.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SlicerError


@dataclass(frozen=True)
class PrintProfile:
    """Settings for slicing and printing one part."""

    layer_height_mm: float = 0.3
    first_layer_height_mm: float = 0.3
    perimeter_count: int = 1
    infill_spacing_mm: float = 2.5
    extrusion_width_mm: float = 0.45
    nozzle_diameter_mm: float = 0.4
    filament_diameter_mm: float = 1.75

    print_speed_mm_s: float = 45.0
    first_layer_speed_mm_s: float = 20.0
    travel_speed_mm_s: float = 120.0

    retraction_length_mm: float = 0.8
    retraction_speed_mm_s: float = 35.0
    retraction_min_travel_mm: float = 2.0

    hotend_temp_c: float = 210.0
    bed_temp_c: float = 60.0
    fan_duty: float = 1.0  # part-cooling fan once past the first layer

    def __post_init__(self) -> None:
        if self.layer_height_mm <= 0 or self.first_layer_height_mm <= 0:
            raise SlicerError("layer heights must be positive")
        if self.layer_height_mm > 0.75 * self.nozzle_diameter_mm + 1e-9:
            raise SlicerError(
                f"layer height {self.layer_height_mm}mm too large for "
                f"{self.nozzle_diameter_mm}mm nozzle"
            )
        if self.perimeter_count < 0:
            raise SlicerError("perimeter count cannot be negative")
        if self.extrusion_width_mm < self.nozzle_diameter_mm * 0.9:
            raise SlicerError("extrusion width must be >= 90% of nozzle diameter")
        if not 0.0 <= self.fan_duty <= 1.0:
            raise SlicerError("fan duty must be in [0, 1]")
        if min(self.print_speed_mm_s, self.travel_speed_mm_s, self.first_layer_speed_mm_s) <= 0:
            raise SlicerError("speeds must be positive")

    @property
    def filament_area_mm2(self) -> float:
        """Cross-sectional area of the filament."""
        return math.pi * (self.filament_diameter_mm / 2) ** 2

    def extrusion_per_mm(self, layer_height_mm: float) -> float:
        """Millimetres of filament consumed per millimetre of printed path.

        Uses the rectangular-bead approximation ``width x height`` that
        mainstream slicers use for flow calculation.
        """
        bead_area = self.extrusion_width_mm * layer_height_mm
        return bead_area / self.filament_area_mm2

    def draft(self) -> "PrintProfile":
        """A faster, coarser variant for quick simulation runs."""
        return PrintProfile(
            layer_height_mm=0.3,
            first_layer_height_mm=0.3,
            perimeter_count=1,
            infill_spacing_mm=4.0,
            extrusion_width_mm=self.extrusion_width_mm,
            nozzle_diameter_mm=self.nozzle_diameter_mm,
            filament_diameter_mm=self.filament_diameter_mm,
            print_speed_mm_s=60.0,
            first_layer_speed_mm_s=30.0,
            travel_speed_mm_s=150.0,
            retraction_length_mm=self.retraction_length_mm,
            retraction_speed_mm_s=self.retraction_speed_mm_s,
            retraction_min_travel_mm=self.retraction_min_travel_mm,
            hotend_temp_c=self.hotend_temp_c,
            bed_temp_c=self.bed_temp_c,
            fan_duty=self.fan_duty,
        )
