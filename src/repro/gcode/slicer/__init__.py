"""A miniature deterministic slicer (the repo's stand-in for Ultimaker Cura).

Turns simple solid shapes into layered G-code with perimeters, rectilinear
infill, travel moves, and retraction — enough structure that the Flaw3D
Trojans (which key off extrusion and movement counts) and the detection
pipeline see realistic command streams. Determinism matters: the golden
captures the detector compares against must be reproducible.
"""

from repro.gcode.slicer.geometry import (
    clip_scanline,
    ensure_ccw,
    inset_convex,
    is_convex,
    point_in_polygon,
    polygon_area,
    polygon_bbox,
    polygon_perimeter,
)
from repro.gcode.slicer.profiles import PrintProfile
from repro.gcode.slicer.shapes import Box, Cylinder, LBracket, Shape, TaperedBox
from repro.gcode.slicer.slicer import SliceResult, Slicer, slice_shape

__all__ = [
    "Box",
    "Cylinder",
    "LBracket",
    "PrintProfile",
    "Shape",
    "SliceResult",
    "Slicer",
    "TaperedBox",
    "clip_scanline",
    "ensure_ccw",
    "inset_convex",
    "is_convex",
    "point_in_polygon",
    "polygon_area",
    "polygon_bbox",
    "polygon_perimeter",
    "slice_shape",
]
