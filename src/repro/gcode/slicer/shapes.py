"""Printable solid shapes for the miniature slicer.

Shapes expose their cross-section outline at a given height; the slicer walks
heights layer by layer. The calibration parts here mirror the kind of small
test prints the paper photographs in Table I (simple rectangular and
cylindrical solids placed on graph paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import SlicerError
from repro.gcode.slicer.geometry import Polygon, ensure_ccw

Point = Tuple[float, float]


class Shape:
    """Base class: a solid defined by per-height outlines."""

    name: str = "shape"
    height_mm: float = 0.0

    def outline_at(self, z: float) -> Polygon:
        """CCW cross-section outline at height ``z`` (0 <= z <= height)."""
        raise NotImplementedError


@dataclass
class Box(Shape):
    """A rectangular prism centred at ``center``."""

    width_mm: float = 20.0
    depth_mm: float = 20.0
    height: float = 5.0
    center: Point = (100.0, 100.0)
    name: str = "box"

    def __post_init__(self) -> None:
        if min(self.width_mm, self.depth_mm, self.height) <= 0:
            raise SlicerError("box dimensions must be positive")
        self.height_mm = self.height

    def outline_at(self, z: float) -> Polygon:
        cx, cy = self.center
        hw, hd = self.width_mm / 2, self.depth_mm / 2
        return ensure_ccw(
            [(cx - hw, cy - hd), (cx + hw, cy - hd), (cx + hw, cy + hd), (cx - hw, cy + hd)]
        )


@dataclass
class TaperedBox(Shape):
    """A box whose cross-section shrinks linearly with height (a frustum).

    Exercises per-layer outline changes, so layer-indexed Trojans (T4/T5) act
    on geometry that differs layer to layer.
    """

    base_width_mm: float = 24.0
    base_depth_mm: float = 24.0
    top_scale: float = 0.5
    height: float = 6.0
    center: Point = (100.0, 100.0)
    name: str = "tapered_box"

    def __post_init__(self) -> None:
        if not 0.05 <= self.top_scale <= 1.0:
            raise SlicerError("top_scale must be in [0.05, 1.0]")
        if min(self.base_width_mm, self.base_depth_mm, self.height) <= 0:
            raise SlicerError("tapered box dimensions must be positive")
        self.height_mm = self.height

    def outline_at(self, z: float) -> Polygon:
        frac = min(1.0, max(0.0, z / self.height))
        scale = 1.0 + (self.top_scale - 1.0) * frac
        cx, cy = self.center
        hw = self.base_width_mm * scale / 2
        hd = self.base_depth_mm * scale / 2
        return ensure_ccw(
            [(cx - hw, cy - hd), (cx + hw, cy - hd), (cx + hw, cy + hd), (cx - hw, cy + hd)]
        )


@dataclass
class Cylinder(Shape):
    """A right circular cylinder approximated by a regular polygon."""

    radius_mm: float = 10.0
    height: float = 5.0
    segments: int = 36
    center: Point = (100.0, 100.0)
    name: str = "cylinder"

    def __post_init__(self) -> None:
        if self.radius_mm <= 0 or self.height <= 0:
            raise SlicerError("cylinder dimensions must be positive")
        if self.segments < 8:
            raise SlicerError("cylinder needs at least 8 segments")
        self.height_mm = self.height

    def outline_at(self, z: float) -> Polygon:
        cx, cy = self.center
        points = []
        for i in range(self.segments):
            angle = 2 * math.pi * i / self.segments
            points.append((cx + self.radius_mm * math.cos(angle), cy + self.radius_mm * math.sin(angle)))
        return ensure_ccw(points)


@dataclass
class LBracket(Shape):
    """An L-shaped bracket (concave): infill-only perimeters.

    The slicer falls back to tracing the outline itself (no inset loops) for
    concave sections — matching how this repo scopes its convex-inset
    geometry engine. Useful to test infill on concave cross-sections.
    """

    leg_mm: float = 24.0
    thickness_mm: float = 8.0
    height: float = 4.0
    corner: Point = (90.0, 90.0)
    name: str = "l_bracket"

    def __post_init__(self) -> None:
        if self.thickness_mm >= self.leg_mm:
            raise SlicerError("L-bracket thickness must be smaller than its leg")
        if min(self.leg_mm, self.thickness_mm, self.height) <= 0:
            raise SlicerError("L-bracket dimensions must be positive")
        self.height_mm = self.height

    def outline_at(self, z: float) -> Polygon:
        x0, y0 = self.corner
        leg, t = self.leg_mm, self.thickness_mm
        return ensure_ccw(
            [
                (x0, y0),
                (x0 + leg, y0),
                (x0 + leg, y0 + t),
                (x0 + t, y0 + t),
                (x0 + t, y0 + leg),
                (x0, y0 + leg),
            ]
        )
