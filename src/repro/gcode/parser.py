"""Parser: raw text → :class:`~repro.gcode.ast.GcodeProgram`."""

from __future__ import annotations

from typing import Iterable

from repro.errors import GcodeChecksumError, GcodeError
from repro.gcode.ast import Command, GcodeProgram, Word
from repro.gcode.checksum import line_checksum
from repro.gcode.lexer import lex_line


def parse_line(raw: str, validate_checksum: bool = False) -> Command:
    """Parse one raw line into a :class:`Command`.

    With ``validate_checksum=True`` a present checksum is verified against the
    payload (as Marlin's serial front-end does); mismatches raise
    :class:`~repro.errors.GcodeChecksumError`.
    """
    lexed = lex_line(raw)

    if validate_checksum and lexed.checksum is not None:
        code_text, _ = raw.rstrip("\r\n"), None
        payload, _, _ = code_text.rpartition("*")
        # Strip any trailing comment from the payload before checksumming;
        # hosts checksum exactly what they transmit, which excludes comments.
        expected = line_checksum(payload)
        if expected != lexed.checksum:
            raise GcodeChecksumError(
                lexed.line_number if lexed.line_number is not None else -1,
                f"checksum mismatch (got {lexed.checksum}, expected {expected})",
            )

    if not lexed.words:
        return Command(
            letter=None,
            code=None,
            params=[],
            comment=lexed.comment,
            line_number=lexed.line_number,
            checksum=lexed.checksum,
        )

    head_letter, head_value = lexed.words[0]
    if head_letter not in ("G", "M", "T"):
        raise GcodeError(f"line does not start with a G/M/T command: {raw!r}")

    params = [Word(letter, value) for letter, value in lexed.words[1:]]
    return Command(
        letter=head_letter,
        code=head_value,
        params=params,
        comment=lexed.comment,
        line_number=lexed.line_number,
        checksum=lexed.checksum,
    )


def parse_program(text_or_lines, validate_checksum: bool = False) -> GcodeProgram:
    """Parse a whole program from a string or an iterable of lines."""
    if isinstance(text_or_lines, str):
        lines: Iterable[str] = text_or_lines.splitlines()
    else:
        lines = text_or_lines
    program = GcodeProgram()
    for raw in lines:
        program.append(parse_line(raw, validate_checksum=validate_checksum))
    return program


def parse_file(path, validate_checksum: bool = False) -> GcodeProgram:
    """Parse a G-code file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read(), validate_checksum=validate_checksum)
