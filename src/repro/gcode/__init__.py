"""G-code toolchain: parse, build, serialize, slice, and (maliciously) edit.

The paper's workflow (Figure 1) is CAD → slicer → G-code → firmware. This
package provides the G-code end of that chain:

* :mod:`repro.gcode.parser` / :mod:`repro.gcode.writer` — a lossless
  parse ↔ serialize round-trip over the RepRap G-code dialect Marlin speaks,
  including comments, ``Nnnn`` line numbers, and ``*`` checksums.
* :mod:`repro.gcode.slicer` — a miniature deterministic slicer standing in
  for Ultimaker Cura: shapes → layers → perimeters + rectilinear infill with
  retraction, emitting ordinary G-code programs.
* :mod:`repro.gcode.transforms` — the attack side: the Flaw3D reduction and
  relocation Trojans of Table II and dr0wned-style geometry edits.
"""

from repro.gcode.ast import Command, GcodeProgram, Word
from repro.gcode.checksum import line_checksum, wrap_with_checksum
from repro.gcode.parser import parse_line, parse_program
from repro.gcode.writer import write_line, write_program

__all__ = [
    "Command",
    "GcodeProgram",
    "Word",
    "line_checksum",
    "parse_line",
    "parse_program",
    "wrap_with_checksum",
    "write_line",
    "write_program",
]
