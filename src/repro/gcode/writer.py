"""Serializer: :class:`~repro.gcode.ast.Command` → text.

``parse_line(write_line(cmd))`` reproduces the command (comments, line
numbers, parameter order); the property-based tests enforce this round-trip.
"""

from __future__ import annotations

from typing import Optional

from repro.gcode.ast import Command, GcodeProgram
from repro.gcode.checksum import line_checksum


def write_line(command: Command, with_checksum: bool = False) -> str:
    """Serialize one command to a text line (no trailing newline).

    With ``with_checksum=True`` and a line number present, appends a freshly
    computed ``*checksum`` (any stored checksum is ignored, since edits
    invalidate it).
    """
    parts = []
    if command.line_number is not None:
        parts.append(f"N{command.line_number}")
    if command.letter is not None:
        name = command.name
        parts.append(name)
        for word in command.params:
            parts.append(word.render())
    body = " ".join(parts)

    if with_checksum and command.line_number is not None and body:
        body = f"{body}*{line_checksum(body)}"

    if command.comment is not None:
        if body:
            return f"{body} ;{command.comment}" if command.comment else f"{body} ;"
        return f";{command.comment}" if command.comment else ";"
    return body


def write_program(program: GcodeProgram, with_checksums: bool = False) -> str:
    """Serialize a program to newline-joined text (with trailing newline)."""
    lines = [write_line(cmd, with_checksum=with_checksums) for cmd in program]
    return "\n".join(lines) + "\n" if lines else ""


def write_file(program: GcodeProgram, path, with_checksums: bool = False) -> None:
    """Serialize ``program`` to a file on disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_program(program, with_checksums=with_checksums))
