"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timed callbacks. Components
(firmware, plant, FPGA modules) schedule work with :meth:`Simulator.schedule`
or :meth:`Simulator.schedule_at` and the kernel dispatches them in
(time, insertion-order) order. Cancellation is lazy: cancelled handles stay in
the heap but are skipped on pop, which keeps both operations O(log n).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class EventHandle:
    """A scheduled event. Returned by the ``schedule*`` methods.

    Holds enough state to support cancellation and introspection. The kernel
    marks the handle ``fired`` just before dispatch; user code may call
    :meth:`cancel` at any time before that.
    """

    __slots__ = ("time_ns", "seq", "callback", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time_ns: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if not self.cancelled and not self.fired and self._sim is not None:
            self._sim._pending -= 1
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is still queued and will fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time_ns}ns seq={self.seq} {name} {state}>"


class Simulator:
    """Integer-nanosecond discrete-event scheduler.

    The kernel makes three guarantees the rest of the system relies on:

    * events fire in nondecreasing time order;
    * two events scheduled for the same instant fire in scheduling order
      (stable FIFO tie-break), which makes signal fan-out deterministic;
    * time never moves backwards — scheduling in the past raises
      :class:`~repro.errors.SimulationError`.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: List[EventHandle] = []
        self._seq: int = 0
        self._dispatched: int = 0
        self._pending: int = 0
        self._running: bool = False
        self._stop_requested: bool = False
        self._run_until_ns: Optional[int] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of callbacks dispatched since construction."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events.

        O(1): a live counter maintained on schedule/cancel/dispatch rather
        than a full-queue scan (the heap still holds cancelled carcasses
        until they bubble to the head).
        """
        return self._pending

    @property
    def run_until_ns(self) -> Optional[int]:
        """The ``until_ns`` bound of the :meth:`run` call in progress.

        ``None`` outside :meth:`run` (or when running unbounded). Batch-
        emitting components clip their chunks to this so a single bulk
        event never emits activity past the window the caller asked for.
        """
        return self._run_until_ns

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the next runnable event, or ``None`` if idle.

        Prunes cancelled heads as a side effect, like dispatch would.
        """
        return self._next_pending_time()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        return self.schedule_at(self._now + int(delay_ns), callback, *args)

    def schedule_at(self, time_ns: int, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``time_ns``."""
        time_ns = int(time_ns)
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ns}ns, already at t={self._now}ns"
            )
        handle = EventHandle(time_ns, self._seq, callback, args, self)
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._queue, handle)
        return handle

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event was dispatched, ``False`` if the queue
        held nothing runnable.
        """
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = handle.time_ns
            handle.fired = True
            self._pending -= 1
            self._dispatched += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until_ns`` passes, or a cap hits.

        When ``until_ns`` is given, every event with ``time <= until_ns`` is
        dispatched and the clock is then advanced to exactly ``until_ns`` so
        periodic processes resumed later see a consistent time base. The
        clock is only advanced when the window truly drained: if ``stop()``
        or a ``max_events`` cap leaves events pending at or before
        ``until_ns``, the clock stays at the last dispatch so those events
        can still fire in order on the next call.

        Returns the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        self._run_until_ns = until_ns
        dispatched = 0
        # Bind hot names once: the loop below is the innermost dispatch path.
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                if self._stop_requested:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                head = queue[0]
                if head.cancelled:
                    heappop(queue)
                    continue
                if until_ns is not None and head.time_ns > until_ns:
                    break
                # Dispatch inline: the head we just inspected is the event
                # to run, so pop it directly instead of re-peeking through
                # step() (which would pop, re-check cancellation, and
                # re-branch). step() stays as the public single-step API.
                heappop(queue)
                self._now = head.time_ns
                head.fired = True
                self._pending -= 1
                self._dispatched += 1
                head.callback(*head.args)
                dispatched += 1
            if until_ns is not None and self._now < until_ns and not self._stop_requested:
                next_time = self._next_pending_time()
                if next_time is None or next_time > until_ns:
                    self._now = until_ns
        finally:
            self._running = False
            self._run_until_ns = None
        return dispatched

    def _next_pending_time(self) -> Optional[int]:
        """Timestamp of the next runnable event, pruning cancelled heads."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time_ns if self._queue else None

    def run_for(self, duration_ns: int, max_events: Optional[int] = None) -> int:
        """Run for ``duration_ns`` of simulated time from now."""
        return self.run(until_ns=self._now + int(duration_ns), max_events=max_events)

    # ------------------------------------------------------------------
    # Periodic helpers
    # ------------------------------------------------------------------
    def every(
        self,
        period_ns: int,
        callback: Callable[..., Any],
        *args: Any,
        start_delay_ns: Optional[int] = None,
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``period_ns`` until cancelled.

        The first invocation happens after ``start_delay_ns`` (default: one
        full period). Returns a :class:`PeriodicTask` for cancellation.
        """
        if period_ns <= 0:
            raise SimulationError(f"period must be positive, got {period_ns}ns")
        task = PeriodicTask(self, int(period_ns), callback, args)
        first = period_ns if start_delay_ns is None else start_delay_ns
        task._arm(self._now + int(first))
        return task


class PeriodicTask:
    """A self-rescheduling periodic callback created by :meth:`Simulator.every`."""

    __slots__ = ("_sim", "period_ns", "_callback", "_args", "_handle", "_cancelled", "fires")

    def __init__(
        self,
        sim: Simulator,
        period_ns: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self._sim = sim
        self.period_ns = period_ns
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None
        self._cancelled = False
        self.fires = 0

    def _arm(self, time_ns: int) -> None:
        if not self._cancelled:
            self._handle = self._sim.schedule_at(time_ns, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fires += 1
        # Re-arm before invoking so a callback that raises does not silently
        # kill the periodic task's schedule for callers who catch the error.
        self._arm(self._sim.now + self.period_ns)
        self._callback(*self._args)

    def cancel(self) -> None:
        """Stop the periodic task. Safe to call more than once."""
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled
