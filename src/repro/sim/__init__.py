"""Discrete-event simulation substrate.

All higher layers (firmware, electronics, physics, the OFFRAMPS FPGA) run on
this kernel. Time is an integer number of nanoseconds; events are callbacks
ordered by (time, sequence). Signals are modelled as wires with subscriber
fan-out, matching the digital-level interposition the paper's board performs.
"""

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.signals import (
    AnalogWire,
    DigitalWire,
    Edge,
    PwmWire,
    StepWire,
    Wire,
)
from repro.sim.time import MS, NS, S, US, format_ns, ns_from_s, s_from_ns
from repro.sim.trace import SignalTrace, TraceEvent, Tracer

__all__ = [
    "AnalogWire",
    "DigitalWire",
    "Edge",
    "EventHandle",
    "MS",
    "NS",
    "PwmWire",
    "S",
    "SignalTrace",
    "Simulator",
    "StepWire",
    "TraceEvent",
    "Tracer",
    "US",
    "Wire",
    "format_ns",
    "ns_from_s",
    "s_from_ns",
]
