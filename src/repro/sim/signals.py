"""Wire abstractions for the board-level signals the OFFRAMPS interposes on.

Four wire flavours cover every signal class in the paper's Figure 2/3 harness:

* :class:`DigitalWire` — level signals (DIR, EN, endstops). Subscribers see
  rising/falling edges.
* :class:`StepWire` — STEP lines. A physical step is a short high pulse; the
  paper's edge detectors count rising edges, so we model each step as a single
  ``pulse`` event carrying its width. This halves event volume without losing
  anything the detection or the Trojans observe.
* :class:`PwmWire` — heater/fan MOSFET gates. Marlin software-PWMs these; the
  observable quantity is the duty cycle, so the wire carries duty updates.
* :class:`AnalogWire` — thermistor divider outputs (a voltage).

Every wire knows who currently controls it (``driver``), which is how the
OFFRAMPS board re-routes a signal from the Arduino to the FPGA Trojan mux.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional

try:  # numpy accelerates batched-pulse bookkeeping; plain loops otherwise.
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Edge(enum.Enum):
    """Which transitions a digital subscriber wants to see."""

    RISING = "rising"
    FALLING = "falling"
    BOTH = "both"


class Wire:
    """Base class: a named signal with subscriber fan-out.

    Subscribers are invoked synchronously, in subscription order, from within
    the driving event — the kernel's FIFO tie-break keeps downstream ordering
    deterministic.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.driver: Optional[str] = None

    def claim(self, driver: str) -> None:
        """Record ``driver`` as the component controlling this wire."""
        self.driver = driver

    def release(self, driver: str) -> None:
        """Release control if ``driver`` currently holds it."""
        if self.driver == driver:
            self.driver = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class DigitalWire(Wire):
    """A two-level signal. ``drive`` sets the level; edges notify subscribers."""

    def __init__(self, sim: Simulator, name: str, initial: int = 0) -> None:
        super().__init__(sim, name)
        self._value = 1 if initial else 0
        self._subscribers: List[tuple] = []
        self.edge_count = 0

    @property
    def value(self) -> int:
        return self._value

    def on_edge(
        self, callback: Callable[["DigitalWire", int, int], Any], edge: Edge = Edge.BOTH
    ) -> None:
        """Subscribe ``callback(wire, new_value, time_ns)`` to transitions."""
        self._subscribers.append((edge, callback))

    def drive(self, value: int) -> None:
        """Set the wire level; fires subscribers only on an actual transition."""
        value = 1 if value else 0
        if value == self._value:
            return
        self._value = value
        self.edge_count += 1
        now = self.sim.now
        kind = Edge.RISING if value else Edge.FALLING
        for want, callback in list(self._subscribers):
            if want is Edge.BOTH or want is kind:
                callback(self, value, now)


class StepWire(Wire):
    """A STEP line. Each motor step is one ``pulse`` event.

    Subscribers receive ``callback(wire, time_ns, width_ns)``. Pulse width is
    carried as metadata (the paper measured a 1 µs minimum width; the overhead
    analysis uses it).
    """

    DEFAULT_WIDTH_NS = 2_000  # Marlin's ~2 us minimum step pulse on AVR.

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._subscribers: List[Callable[["StepWire", int, int], Any]] = []
        self._batch_handlers: List[Optional[Callable[["StepWire", Any, int], Any]]] = []
        self._ready_checks: List[Optional[Callable[[int], bool]]] = []
        self.pulse_count = 0
        self.last_pulse_ns: Optional[int] = None
        self.min_interval_ns: Optional[int] = None
        self.min_width_ns: Optional[int] = None

    def on_pulse(
        self,
        callback: Callable[["StepWire", int, int], Any],
        *,
        batch: Optional[Callable[["StepWire", Any, int], Any]] = None,
        ready: Optional[Callable[[int], bool]] = None,
    ) -> None:
        """Subscribe ``callback(wire, time_ns, width_ns)`` to pulses.

        A subscriber may additionally declare itself batch-capable by
        providing ``batch(wire, times_ns, width_ns)`` — called once for a
        whole run of pulses with their explicit timestamps — plus an
        optional ``ready(count)`` predicate consulted before every batch.
        Dispatching ``batch`` must be observably identical to dispatching
        ``callback`` once per timestamp whenever ``ready`` returned True.
        """
        self._subscribers.append(callback)
        self._batch_handlers.append(batch)
        self._ready_checks.append(ready)

    def batch_ready(self, count: int) -> bool:
        """True when every subscriber can absorb ``count`` pulses in bulk.

        Any subscriber without a batch handler (tests, ad-hoc taps) or
        whose readiness check declines vetoes batching — the emitter then
        falls back to per-pulse dispatch, which is always correct.
        """
        for handler, ready in zip(self._batch_handlers, self._ready_checks):
            if handler is None:
                return False
            if ready is not None and not ready(count):
                return False
        return True

    def pulse(self, width_ns: int = DEFAULT_WIDTH_NS) -> None:
        """Emit one step pulse at the current simulation time."""
        if width_ns <= 0:
            raise SimulationError(f"pulse width must be positive, got {width_ns}ns")
        now = self.sim.now
        if self.last_pulse_ns is not None:
            interval = now - self.last_pulse_ns
            if interval > 0 and (self.min_interval_ns is None or interval < self.min_interval_ns):
                self.min_interval_ns = interval
        if self.min_width_ns is None or width_ns < self.min_width_ns:
            self.min_width_ns = width_ns
        self.last_pulse_ns = now
        self.pulse_count += 1
        for callback in list(self._subscribers):
            callback(self, now, width_ns)

    def pulse_batch(self, times_ns: Any, width_ns: int = DEFAULT_WIDTH_NS) -> None:
        """Emit a run of pulses at explicit ``times_ns`` (nondecreasing ints).

        Only valid after :meth:`batch_ready` approved the same count: stats
        update exactly as ``count`` sequential :meth:`pulse` calls would,
        then each subscriber's batch handler runs once, in subscription
        order. Timestamps are passed explicitly because the kernel clock
        sits at the *chunk* event's time, not at each pulse's.
        """
        count = len(times_ns)
        if count == 0:
            return
        if width_ns <= 0:
            raise SimulationError(f"pulse width must be positive, got {width_ns}ns")
        first = int(times_ns[0])
        last = int(times_ns[-1])
        min_gap = self.min_interval_ns
        prev = self.last_pulse_ns
        if prev is not None:
            gap = first - prev
            if gap > 0 and (min_gap is None or gap < min_gap):
                min_gap = gap
        if _np is not None and isinstance(times_ns, _np.ndarray):
            diffs = _np.diff(times_ns)
            positive = diffs[diffs > 0]
            if positive.size:
                batch_min = int(positive.min())
                if min_gap is None or batch_min < min_gap:
                    min_gap = batch_min
        else:
            for i in range(1, count):
                gap = int(times_ns[i]) - int(times_ns[i - 1])
                if gap > 0 and (min_gap is None or gap < min_gap):
                    min_gap = gap
        self.min_interval_ns = min_gap
        if self.min_width_ns is None or width_ns < self.min_width_ns:
            self.min_width_ns = width_ns
        self.last_pulse_ns = last
        self.pulse_count += count
        for handler in list(self._batch_handlers):
            handler(self, times_ns, width_ns)

    @property
    def max_frequency_hz(self) -> Optional[float]:
        """Highest observed pulse rate, from the minimum pulse interval."""
        if self.min_interval_ns is None or self.min_interval_ns == 0:
            return None
        return 1e9 / self.min_interval_ns


class PwmWire(Wire):
    """A PWM-controlled gate, carried as a duty-cycle value in [0, 1]."""

    def __init__(self, sim: Simulator, name: str, initial_duty: float = 0.0) -> None:
        super().__init__(sim, name)
        self._duty = float(initial_duty)
        self._subscribers: List[Callable[["PwmWire", float, int], Any]] = []
        self.update_count = 0

    @property
    def duty(self) -> float:
        return self._duty

    def on_change(self, callback: Callable[["PwmWire", float, int], Any]) -> None:
        """Subscribe ``callback(wire, new_duty, time_ns)`` to duty updates."""
        self._subscribers.append(callback)

    def drive(self, duty: float) -> None:
        """Set the duty cycle (clamped to [0, 1]); notifies on change only."""
        duty = min(1.0, max(0.0, float(duty)))
        if duty == self._duty:
            return
        self._duty = duty
        self.update_count += 1
        now = self.sim.now
        for callback in list(self._subscribers):
            callback(self, duty, now)


class AnalogWire(Wire):
    """A continuously-valued signal (thermistor divider voltage)."""

    def __init__(self, sim: Simulator, name: str, initial: float = 0.0) -> None:
        super().__init__(sim, name)
        self._value = float(initial)
        self._subscribers: List[Callable[["AnalogWire", float, int], Any]] = []

    @property
    def value(self) -> float:
        return self._value

    def on_change(self, callback: Callable[["AnalogWire", float, int], Any]) -> None:
        self._subscribers.append(callback)

    def drive(self, value: float) -> None:
        value = float(value)
        if value == self._value:
            return
        self._value = value
        now = self.sim.now
        for callback in list(self._subscribers):
            callback(self, value, now)
