"""Signal tracing: the FPGA-as-logic-analyzer view of the harness.

The paper describes using the MITM FPGA as "a rudimentary digital logic
analyzer". :class:`Tracer` attaches to any set of wires and records a
time-stamped event list per signal, from which the overhead analysis extracts
maximum signal frequencies and minimum pulse widths (Section V-B), and from
which VCD-style text dumps can be produced for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.sim.signals import AnalogWire, DigitalWire, Edge, PwmWire, StepWire

TraceableWire = Union[DigitalWire, StepWire, PwmWire, AnalogWire]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded transition on one signal."""

    time_ns: int
    kind: str  # "edge", "pulse", "duty", "analog"
    value: float  # new level / duty / voltage; pulse width for "pulse"


@dataclass
class SignalTrace:
    """The event history of a single wire."""

    name: str
    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def min_interval_ns(self) -> Optional[int]:
        """Smallest gap between consecutive events, or None if < 2 events."""
        if len(self.events) < 2:
            return None
        best: Optional[int] = None
        prev = self.events[0].time_ns
        for event in self.events[1:]:
            gap = event.time_ns - prev
            prev = event.time_ns
            if gap <= 0:
                continue
            if best is None or gap < best:
                best = gap
        return best

    @property
    def max_frequency_hz(self) -> Optional[float]:
        """Peak event rate implied by the minimum interval."""
        interval = self.min_interval_ns
        if interval is None or interval == 0:
            return None
        return 1e9 / interval

    @property
    def min_pulse_width_ns(self) -> Optional[int]:
        """Smallest recorded pulse width (StepWire traces only)."""
        widths = [int(e.value) for e in self.events if e.kind == "pulse"]
        return min(widths) if widths else None


class Tracer:
    """Record transitions on a set of wires.

    Attach with :meth:`watch`; retrieve with :meth:`trace`. The tracer is
    passive — it never drives a wire — mirroring the pulse-capture signal path
    of the paper's Figure 3c.
    """

    def __init__(self) -> None:
        self._traces: Dict[str, SignalTrace] = {}

    def watch(self, wires: Iterable[TraceableWire]) -> None:
        """Start recording every wire in ``wires``."""
        for wire in wires:
            self.watch_one(wire)

    def watch_one(self, wire: TraceableWire) -> None:
        if wire.name in self._traces:
            return
        trace = SignalTrace(wire.name)
        self._traces[wire.name] = trace
        if isinstance(wire, StepWire):
            wire.on_pulse(
                lambda _w, t, width, _tr=trace: _tr.events.append(
                    TraceEvent(t, "pulse", float(width))
                ),
                batch=lambda _w, times, width, _tr=trace: _tr.events.extend(
                    TraceEvent(int(t), "pulse", float(width)) for t in times
                ),
            )
        elif isinstance(wire, DigitalWire):
            wire.on_edge(
                lambda _w, value, t, _tr=trace: _tr.events.append(
                    TraceEvent(t, "edge", float(value))
                ),
                Edge.BOTH,
            )
        elif isinstance(wire, PwmWire):
            wire.on_change(
                lambda _w, duty, t, _tr=trace: _tr.events.append(
                    TraceEvent(t, "duty", duty)
                )
            )
        elif isinstance(wire, AnalogWire):
            wire.on_change(
                lambda _w, value, t, _tr=trace: _tr.events.append(
                    TraceEvent(t, "analog", value)
                )
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot trace wire of type {type(wire).__name__}")

    def trace(self, name: str) -> SignalTrace:
        """Return the trace for signal ``name`` (empty if never watched)."""
        return self._traces.get(name, SignalTrace(name))

    @property
    def signal_names(self) -> List[str]:
        return sorted(self._traces)

    def total_events(self) -> int:
        return sum(len(trace) for trace in self._traces.values())

    def dump(self, limit_per_signal: Optional[int] = None) -> str:
        """Render a human-readable multi-signal dump (for examples/debugging)."""
        lines: List[str] = []
        for name in self.signal_names:
            trace = self._traces[name]
            lines.append(f"signal {name}: {len(trace)} events")
            events = trace.events
            if limit_per_signal is not None:
                events = events[:limit_per_signal]
            for event in events:
                lines.append(f"  {event.time_ns:>15d}ns {event.kind:<6s} {event.value:g}")
        return "\n".join(lines)
