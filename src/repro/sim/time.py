"""Time units and helpers for the integer-nanosecond simulation clock.

The kernel keeps time as ``int`` nanoseconds so that repeated scheduling never
accumulates floating-point drift — important because the detection experiments
compare step counts in exact 100 ms windows across prints.
"""

from __future__ import annotations

NS = 1
"""One nanosecond (the base unit)."""

US = 1_000
"""One microsecond in nanoseconds."""

MS = 1_000_000
"""One millisecond in nanoseconds."""

S = 1_000_000_000
"""One second in nanoseconds."""


def ns_from_s(seconds: float) -> int:
    """Convert seconds (float) to integer nanoseconds, rounding to nearest."""
    return int(round(seconds * S))


def s_from_ns(nanoseconds: int) -> float:
    """Convert integer nanoseconds to seconds (float)."""
    return nanoseconds / S


def format_ns(nanoseconds: int) -> str:
    """Render a time for logs: picks the largest unit that reads naturally.

    >>> format_ns(12)
    '12ns'
    >>> format_ns(2_500_000)
    '2.500ms'
    >>> format_ns(3_000_000_000)
    '3.000s'
    """
    if nanoseconds < US:
        return f"{nanoseconds}ns"
    if nanoseconds < MS:
        return f"{nanoseconds / US:.3f}us"
    if nanoseconds < S:
        return f"{nanoseconds / MS:.3f}ms"
    return f"{nanoseconds / S:.3f}s"
