"""Command-line interface: ``python -m repro <command>``.

Mirrors the workflows of the paper's tooling:

* ``slice``    — shape → G-code (the Cura role);
* ``print``    — execute G-code on the simulated machine, capture the
  OFFRAMPS transaction stream to CSV (the print + capture role);
* ``attack``   — apply a Flaw3D/dr0wned transform to a G-code file (the
  malicious-bootloader role);
* ``detect``   — compare two capture CSVs with the 5 % margin + final check
  (the paper's Python detection script);
* ``table1`` / ``table2`` / ``figure4`` / ``overhead`` / ``drift`` /
  ``ablation`` — regenerate the corresponding paper artifact;
* ``sweep``    — expand a named scenario grid (parts × attacks × detectors
  × seeds) into one flat batch and score it; with ``--cache-dir`` the sweep
  is incremental (repeats re-simulate nothing), ``--hosts N`` shards the
  pending scenarios across N worker hosts (subprocess workers over a shared
  ``--work-dir``, or any ``--transport`` backend — an HTTP shard queue on a
  ``repro serve`` instance crosses machine boundaries with no shared mount)
  which *score worker-side* and ship only verdict rows back
  (``--ship-summaries`` restores the full-summary payload), ``--steal``
  carves many small shards so idle/late-joining hosts rebalance,
  ``--workers M`` composes with ``--hosts`` for N×M total parallelism, and
  ``--csv`` / ``--html`` emit report files alongside the text table;
* ``worker``   — serve a sweep shard queue: claim pending shards, execute
  (and score) them, publish results. Run it by hand on any machine that
  shares the coordinator's work dir — or, over HTTP, just its network —
  to join a sweep; ``--workers M`` runs each shard as a parallel batch;
* ``lint``     — the determinism & wire-safety static analyzer
  (:mod:`repro.analysis.lint`): AST rules guarding the byte-identical-
  verdict contract (builtin ``hash()`` seeding, unseeded RNG draws,
  wall-clock reads in sim code, unsorted set consumption, non-atomic
  binary writes, unsafe wire-class fields). Exit 1 on any unsuppressed
  finding; ``--rules`` prints the catalog, ``--json`` machine output.

Every experiment subcommand shares one option block (``--workers``,
``--no-cache``, ``--cache-dir``, ``--out``) wired through a single parent
parser; ``--cache-dir`` (or ``REPRO_CACHE_DIR``) makes the content-keyed
session cache persistent on disk.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.capture import load_capture_csv, save_capture_csv
from repro.detection.comparator import CaptureComparator
from repro.experiments.runner import run_print
from repro.gcode.parser import parse_file
from repro.gcode.slicer import Box, Cylinder, Slicer
from repro.gcode.transforms.edits import insert_void, scale_moves
from repro.gcode.transforms.flaw3d import Flaw3dReduction, Flaw3dRelocation
from repro.gcode.writer import write_file


def _cmd_slice(args: argparse.Namespace) -> int:
    if args.shape == "box":
        shape = Box(width_mm=args.width, depth_mm=args.depth, height=args.height)
    else:
        shape = Cylinder(radius_mm=args.width / 2, height=args.height)
    result = Slicer().slice(shape)
    write_file(result.program, args.out)
    print(
        f"sliced {shape.name}: {result.layer_count} layers, "
        f"{result.command_count} commands, {result.filament_mm:.1f} mm filament "
        f"-> {args.out}"
    )
    return 0


def _cmd_print(args: argparse.Namespace) -> int:
    program = parse_file(args.gcode)
    result = run_print(
        program,
        noise_sigma=args.noise,
        noise_seed=args.seed,
        uart_period_ms=args.uart_period_ms,
    )
    print(
        f"print {args.gcode}: {result.status.value}"
        + (f" ({result.kill_reason})" if result.kill_reason else "")
    )
    print(
        f"  {result.duration_s:.0f} simulated seconds, "
        f"{len(result.capture)} transactions, final counts {result.final_counts()}"
    )
    if args.capture:
        save_capture_csv(result.capture, args.capture)
        print(f"  capture -> {args.capture}")
    return 0 if result.completed else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    program = parse_file(args.gcode)
    if args.reduction is not None:
        program = Flaw3dReduction(args.reduction).apply(program)
        label = f"flaw3d reduction x{args.reduction}"
    elif args.relocation is not None:
        program = Flaw3dRelocation(args.relocation).apply(program)
        label = f"flaw3d relocation every {args.relocation} moves"
    elif args.void is not None:
        program = insert_void(program, tuple(args.void))
        label = f"dr0wned void {args.void}"
    else:
        program = scale_moves(program, args.scale)
        label = f"scale x{args.scale}"
    write_file(program, args.out)
    print(f"applied {label}: {args.gcode} -> {args.out}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    golden = load_capture_csv(args.golden)
    suspect = load_capture_csv(args.suspect)
    comparator = CaptureComparator(margin=args.margin)
    report = comparator.compare_captures(golden, suspect)
    print(report.render())
    return 1 if report.trojan_likely else 0


def _batch_kwargs(args: argparse.Namespace) -> dict:
    """The BatchRunner knobs shared by every experiment subcommand.

    ``--cache-dir`` wins over ``--no-cache``; without either, the shared
    in-process cache is used (which itself honors ``REPRO_CACHE_DIR``).
    """
    if getattr(args, "cache_dir", None):
        cache = args.cache_dir
    else:
        cache = not args.no_cache
    return dict(workers=args.workers, cache=cache)


def _emit(args: argparse.Namespace, text: str) -> None:
    """Print an experiment's rendered output; mirror it to ``--out`` if set.

    The file is written before stdout so the artifact survives a closed
    pipe (e.g. ``repro table1 --out t1.txt | head``).
    """
    if getattr(args, "out", None):
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
            if not text.endswith("\n"):
                handle.write("\n")
    print(text)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import render_table1, run_table1

    _emit(args, render_table1(run_table1(**_batch_kwargs(args))))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.table2 import run_table2

    result = run_table2(**_batch_kwargs(args))
    _emit(args, result.render())
    return 0 if result.all_detected and not result.false_positive else 1


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.experiments.figure4 import run_figure4

    _emit(args, run_figure4(**_batch_kwargs(args)).render())
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.experiments.overhead import run_overhead

    experiment = run_overhead(**_batch_kwargs(args))
    _emit(args, experiment.render())
    return 0 if experiment.no_quality_effect else 1


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.experiments.drift import run_drift

    experiment = run_drift(**_batch_kwargs(args))
    _emit(args, experiment.render())
    return 0 if experiment.within_margin(5.0) else 1


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablation import run_ablation

    _emit(args, run_ablation(**_batch_kwargs(args)).render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.experiments.report import write_reports
    from repro.experiments.scenario import GRIDS, grid_scenarios, run_sweep

    try:
        scenarios = grid_scenarios(args.grid)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.list:
        lines = [f"grid {args.grid!r}: {GRIDS[args.grid].description}"]
        for sc in scenarios:
            lines.append(
                f"  {sc.name:<28} part={sc.part:<10} "
                f"attack={sc.attack or '-':<24} detectors={','.join(sc.detectors)}"
            )
        _emit(args, "\n".join(lines))
        return 0
    result = run_sweep(
        scenarios,
        grid=args.grid,
        hosts=args.hosts,
        work_dir=args.work_dir,
        transport=args.transport,
        steal=args.steal,
        ship_summaries=args.ship_summaries,
        fast_path=not args.precise,
        **_batch_kwargs(args),
    )
    _emit(args, result.render())
    for path in write_reports(result, csv_path=args.csv, html_path=args.html):
        print(f"report -> {path}")
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import (
        LintConfigError,
        render_json,
        render_sarif_result,
        render_text,
        rule_catalog,
        run_lint,
        update_baseline,
        update_wire_baseline,
    )

    if args.rules:
        print(rule_catalog())
        return 0
    try:
        if args.update_baseline:
            path, count = update_baseline(root=args.root)
            print(f"baseline -> {path} ({count} acknowledged finding(s))")
            return 0
        if args.update_wire_baseline:
            path, count = update_wire_baseline(root=args.root)
            print(f"wire-schema baseline -> {path} ({count} protocol(s))")
            return 0
        result = run_lint(
            paths=args.paths or None, root=args.root, profile=args.profile
        )
    except LintConfigError as exc:
        print(f"lint config error:\n{exc}", file=sys.stderr)
        return 2
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif_result(result))
        print(f"sarif -> {args.sarif}")
    print(render_json(result) if args.json else render_text(result))
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    backend = args.backend
    if backend == "auto":
        try:
            import fastapi  # noqa: F401

            backend = "fastapi"
        except ImportError:
            backend = "wsgi"
    cache = args.cache_dir if args.cache_dir else not args.no_cache
    workers = args.workers  # None = honor each submission's own setting
    if backend == "fastapi":
        from repro.service.fastapi_app import (
            create_fastapi_app,
            run_uvicorn_server,
        )

        app = create_fastapi_app(db=args.db, cache=cache, workers=workers)
        run_uvicorn_server(app, args.host, args.port)
    else:
        from repro.service.app import create_app, run_wsgi_server

        app = create_app(db=args.db, cache=cache, workers=workers)
        run_wsgi_server(app, args.host, args.port)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.experiments.distrib import Worker

    worker = Worker(
        args.work_dir,
        worker_id=args.id,
        cache=args.cache_dir,
        poll_s=args.poll_s,
        idle_timeout_s=args.idle_timeout_s,
        workers=args.workers,
    )
    executed = worker.run()
    print(f"worker {worker.worker_id}: {executed} shard(s) executed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OFFRAMPS reproduction: simulate, attack, capture, detect.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("slice", help="slice a shape to G-code")
    p.add_argument("--shape", choices=("box", "cylinder"), default="box")
    p.add_argument("--width", type=float, default=16.0, help="width / diameter (mm)")
    p.add_argument("--depth", type=float, default=16.0)
    p.add_argument("--height", type=float, default=1.5)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_slice)

    p = sub.add_parser("print", help="print G-code on the simulated machine")
    p.add_argument("gcode")
    p.add_argument("--noise", type=float, default=0.0005, help="time-noise sigma")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--uart-period-ms", type=int, default=100)
    p.add_argument("--capture", help="write the transaction stream to this CSV")
    p.set_defaults(func=_cmd_print)

    p = sub.add_parser("attack", help="apply a malicious transform to G-code")
    p.add_argument("gcode")
    p.add_argument("--out", required=True)
    group = p.add_mutually_exclusive_group()
    group.add_argument("--reduction", type=float, help="Flaw3D reduction factor")
    group.add_argument("--relocation", type=int, help="Flaw3D relocation period")
    group.add_argument(
        "--void", type=float, nargs=6, metavar=("XMIN", "YMIN", "ZMIN", "XMAX", "YMAX", "ZMAX")
    )
    group.add_argument("--scale", type=float, default=0.95, help="XY scale factor")
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("detect", help="compare two captures (exit 1 on Trojan)")
    p.add_argument("golden")
    p.add_argument("suspect")
    p.add_argument("--margin", type=float, default=0.05)
    p.set_defaults(func=_cmd_detect)

    batch_parent = _batch_options_parser()
    for name, func, help_text in (
        ("table1", _cmd_table1, "regenerate Table I (Trojan suite)"),
        ("table2", _cmd_table2, "regenerate Table II (Flaw3D detection)"),
        ("figure4", _cmd_figure4, "regenerate Figure 4 (detection output)"),
        ("overhead", _cmd_overhead, "regenerate the Section V-B overhead analysis"),
        ("drift", _cmd_drift, "regenerate the Section V-C drift analysis"),
        ("ablation", _cmd_ablation, "run the UART-period/margin ablation"),
    ):
        p = sub.add_parser(name, help=help_text, parents=[batch_parent])
        p.set_defaults(func=func)

    p = sub.add_parser(
        "sweep",
        help="run a named scenario grid (parts x attacks x detectors x seeds)",
        parents=[batch_parent],
    )
    p.add_argument(
        "--grid",
        default="full",
        help="registered scenario grid to expand (default: full; others: "
        "smoke, clean, table1, trojans, flaw3d, dr0wned, and the parametric "
        "curves t2-curve, t9-curve, curves)",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list the grid's scenarios without running them",
    )
    p.add_argument(
        "--csv",
        help="also write the sweep as CSV (one row per scenario x detector)",
    )
    p.add_argument(
        "--html",
        help="also write the sweep as a self-contained HTML report",
    )
    p.add_argument(
        "--hosts",
        type=int,
        default=1,
        help="shard the pending scenarios across N worker hosts "
        "(subprocess workers over a shared work dir; default: 1 = in-process). "
        "Composes with --workers: each host runs its shard through a "
        "parallel batch of that many processes (total parallelism N x M)",
    )
    p.add_argument(
        "--work-dir",
        help="distribution work directory (pending/claimed/done shards); "
        "defaults to a temp dir. Point external `repro worker` hosts here.",
    )
    p.add_argument(
        "--transport",
        default=None,
        help="shard-queue backend target: a filesystem path, "
        "http://host:port/queues/<name> (a `repro serve` shard queue — "
        "workers join over the network, no shared mount), or "
        "memory://<name> (in-process; tests). Overrides --work-dir. "
        "External hosts join with `repro worker <same target>`.",
    )
    p.add_argument(
        "--steal",
        action="store_true",
        help="distributed sweeps: carve many small shards instead of one "
        "per host, so idle and late-joining workers steal from the shared "
        "queue (verdicts stay byte-identical; stragglers shed load)",
    )
    p.add_argument(
        "--precise",
        action="store_true",
        help="force the per-event precise simulation path instead of the "
        "default batched fast path (verdicts are byte-identical either way; "
        "fast and precise sessions cache under distinct keys)",
    )
    p.add_argument(
        "--ship-summaries",
        action="store_true",
        help="distributed sweeps: ship full SessionSummary pickles back "
        "instead of the default verdict-rows-only payload (use when this "
        "process needs the summaries themselves, e.g. to warm an in-memory "
        "cache without a shared --cache-dir)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "lint",
        help="run the determinism & wire-safety static analyzer "
        "(exit 1 on unsuppressed findings)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        "(default: the [tool.repro.lint] paths in pyproject.toml)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON instead of text",
    )
    p.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalog (code, rationale, fix, scope) and exit",
    )
    p.add_argument(
        "--root",
        default=None,
        help="project root holding pyproject.toml (default: current directory)",
    )
    p.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="also write findings as a SARIF 2.1.0 document (for CI "
        "annotation upload)",
    )
    p.add_argument(
        "--profile",
        default=None,
        help="run a named [tool.repro.lint.profile.<name>] profile "
        "(re-scoped paths, disabled rules) — e.g. `--profile tests`",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the committed findings baseline from the current "
        "run (carries justifications forward) and exit",
    )
    p.add_argument(
        "--update-wire-baseline",
        action="store_true",
        help="re-snapshot the configured wire protocols into the "
        "committed wire-schema baseline and exit",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "serve",
        help="run the sweep service (HTTP API + persistent SQLite job store)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument(
        "--db",
        default=".repro-service/jobs.sqlite3",
        help="SQLite job-store path; identical submissions dedup against "
        "completed jobs already in this store (':memory:' for ephemeral)",
    )
    p.add_argument(
        "--cache-dir",
        help="persistent session-cache directory shared with CLI sweeps "
        "(default: in-memory per-process cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the session cache entirely",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pin every job to this many worker processes "
        "(default: honor each submission's own 'workers' field)",
    )
    p.add_argument(
        "--backend",
        choices=("auto", "wsgi", "fastapi"),
        default="auto",
        help="HTTP frontend: the zero-dependency stdlib WSGI server, the "
        "FastAPI/uvicorn stack from the [service] extra, or auto-detect "
        "(fastapi when importable, else wsgi)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="serve a sweep shard queue (claim + execute pending shards)",
    )
    p.add_argument(
        "work_dir",
        metavar="target",
        help="the coordinator's shard queue: its --work-dir path, or an "
        "http://host:port/queues/<name> target from --transport (join a "
        "sweep over the network — late joiners steal work immediately)",
    )
    p.add_argument(
        "--cache-dir",
        help="persistent session-cache directory (share the coordinator's)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run each claimed shard through this many parallel processes "
        "(0 = one per CPU; the heartbeat ticks per completed session)",
    )
    p.add_argument("--id", help="worker id (default: <hostname>-<pid>)")
    p.add_argument(
        "--poll-s",
        type=float,
        default=0.2,
        help="queue poll interval in seconds",
    )
    p.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        help="exit after the queue has stayed empty this long "
        "(default: run until the coordinator writes STOP)",
    )
    p.set_defaults(func=_cmd_worker)

    return parser


def _batch_options_parser() -> argparse.ArgumentParser:
    """The one shared option block every experiment subcommand inherits."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the print sessions (0 = one per CPU)",
    )
    parent.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-keyed session cache",
    )
    parent.add_argument(
        "--cache-dir",
        help="persistent on-disk session-cache directory "
        "(overrides --no-cache; REPRO_CACHE_DIR sets the default cache's dir)",
    )
    parent.add_argument(
        "--out",
        help="also write the rendered output to this file",
    )
    return parent


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
