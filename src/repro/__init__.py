"""OFFRAMPS reproduction: FPGA machine-in-the-middle analysis of 3D printers.

A full-stack simulation of the platform from "OFFRAMPS: An FPGA-based
Intermediary for Analysis and Modification of Additive Manufacturing Control
Systems" (Blocklove et al., DSN 2024): a Marlin-like firmware, the RAMPS 1.4
electronics, printer physics, and -- in the middle of the harness -- the
OFFRAMPS board with its Trojan suite and pulse-capture detection pipeline.

Quick start::

    from repro import (
        run_print, sliced_program, standard_part,
        CaptureComparator, apply_reduction,
    )

    program = sliced_program(standard_part())
    golden = run_print(program, noise_sigma=0.002, noise_seed=1)
    suspect = run_print(apply_reduction(program, 0.5),
                        noise_sigma=0.002, noise_seed=2)
    report = CaptureComparator().compare_captures(golden.capture,
                                                  suspect.capture)
    print(report.render())  # -> "Trojan likely!"
"""

from repro.core import (
    AxisTracker,
    FpgaFabric,
    HomingDetector,
    JumperMode,
    OfframpsBoard,
    PulseCapture,
    Transaction,
    UartExporter,
    load_capture_csv,
    make_trojan,
    save_capture_csv,
)
from repro.detection import (
    CaptureComparator,
    DetectionReport,
    GoldenStore,
    StreamingDetector,
)
from repro.electronics import RampsBoard, SignalHarness
from repro.experiments import PrintSession, SessionResult
from repro.experiments.runner import run_print
from repro.experiments.workloads import (
    detection_profile,
    sliced_program,
    standard_part,
    table1_part,
    tiny_part,
)
from repro.firmware import MarlinConfig, MarlinFirmware, SerialHost
from repro.gcode import GcodeProgram, parse_program, write_program
from repro.gcode.slicer import Box, Cylinder, PrintProfile, Slicer, slice_shape
from repro.gcode.transforms import apply_reduction, apply_relocation
from repro.physics import PlantProfile, PrinterPlant, compare_traces
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "AxisTracker",
    "Box",
    "CaptureComparator",
    "Cylinder",
    "DetectionReport",
    "FpgaFabric",
    "GcodeProgram",
    "GoldenStore",
    "HomingDetector",
    "JumperMode",
    "MarlinConfig",
    "MarlinFirmware",
    "OfframpsBoard",
    "PlantProfile",
    "PrintProfile",
    "PrintSession",
    "PrinterPlant",
    "PulseCapture",
    "RampsBoard",
    "SerialHost",
    "SessionResult",
    "SignalHarness",
    "Simulator",
    "Slicer",
    "StreamingDetector",
    "Transaction",
    "UartExporter",
    "apply_reduction",
    "apply_relocation",
    "compare_traces",
    "detection_profile",
    "load_capture_csv",
    "make_trojan",
    "parse_program",
    "run_print",
    "save_capture_csv",
    "slice_shape",
    "sliced_program",
    "standard_part",
    "table1_part",
    "tiny_part",
    "write_program",
    "__version__",
]
