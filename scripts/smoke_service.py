#!/usr/bin/env python
"""Service parity + dedup smoke check (`make smoke-service`).

Drives the sweep service end-to-end, entirely in-process (the WSGI app
through :class:`repro.service.ServiceClient` — no socket, no third-party
HTTP stack), and asserts the service adds transport and storage without
changing a byte of science:

1. **submit** the smoke grid against a fresh SQLite job store (sharing
   the CI session-cache dir) and **poll** ``GET /jobs/{id}`` to
   completion, the way a remote client would;
2. the fetched ``GET /jobs/{id}/report.csv`` must be **byte-identical**
   to the CSV `make smoke` writes (``benchmarks/out/smoke-sweep.csv``) —
   one sweep semantics whether you arrive via CLI or HTTP. The reference
   is regenerated through the real CLI if missing;
3. **re-submitting** the identical grid must be answered from the store:
   HTTP 200 (not 201), ``deduped_from`` pointing at the first job,
   ``sessions_simulated == 0`` in its stats, and the same CSV bytes;
4. a **second service instance over the same store file** (a different
   "user") must dedup the same way — the across-runs contract.

Exit code 0 means every check held; any drift exits 1 with a diagnostic.
With ``--record PATH`` the measured numbers are written there (the CI
target records into ``benchmarks/out/smoke-service.txt``).

Run from the repo root: ``python scripts/smoke_service.py [--grid smoke]
[--cache-dir DIR] [--record PATH]`` (the script puts ``src/`` on
``sys.path`` itself).
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.service import ServiceClient, create_app  # noqa: E402


class ServiceSmokeFailure(Exception):
    pass


def reference_csv(path: str, cache_dir: str, grid: str) -> bytes:
    """The `make smoke` CSV bytes, regenerating via the real CLI if absent."""
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        from repro.cli import main as repro_main

        print(f"reference {path} missing; generating via `repro sweep`")
        code = repro_main(
            ["sweep", "--grid", grid, "--cache-dir", cache_dir, "--csv", path]
        )
        if code != 0:
            raise ServiceSmokeFailure(f"reference sweep exited {code}")
    with open(path, "rb") as handle:
        return handle.read()


def wait_done(client: ServiceClient, job_id: int, timeout_s: float = 600.0) -> dict:
    """Poll GET /jobs/{id} to a terminal state, like a remote client."""
    deadline = time.monotonic() + timeout_s
    polls = 0
    while True:
        response = client.get(f"/jobs/{job_id}")
        if response.status_code != 200:
            raise ServiceSmokeFailure(
                f"poll GET /jobs/{job_id} -> {response.status_code}: {response.text}"
            )
        job = response.json()
        polls += 1
        if job["state"] in ("done", "failed"):
            job["polls"] = polls
            return job
        if time.monotonic() >= deadline:
            raise ServiceSmokeFailure(
                f"job {job_id} still {job['state']} "
                f"({job['sessions_done']}/{job['sessions_total']}) "
                f"after {timeout_s:.0f}s"
            )
        time.sleep(0.1)


def expect_dedup(response, source_id: int, label: str) -> dict:
    """A resubmission response must be answered from the store, not simulated."""
    if response.status_code != 200:
        raise ServiceSmokeFailure(
            f"{label}: expected HTTP 200 (deduped), got {response.status_code}: "
            f"{response.text}"
        )
    job = response.json()
    if job["state"] != "done" or job["deduped_from"] != source_id:
        raise ServiceSmokeFailure(
            f"{label}: expected a job born done deduped from {source_id}, got "
            f"{json.dumps(job)}"
        )
    simulated = (job["stats"] or {}).get("sessions_simulated")
    if simulated != 0:
        raise ServiceSmokeFailure(
            f"{label}: deduped job reports {simulated} sessions simulated; "
            "expected 0"
        )
    return job


def check_service(grid: str, cache_dir: str, reference: bytes, base: str) -> str:
    db = os.path.join(base, "jobs.sqlite3")
    app = create_app(db=db, cache=cache_dir)
    client = ServiceClient(app)

    health = client.get("/healthz").json()
    if health.get("status") != "ok":
        raise ServiceSmokeFailure(f"unhealthy service: {health}")

    submitted = client.post("/jobs", {"grid": grid})
    if submitted.status_code != 201:
        raise ServiceSmokeFailure(
            f"submit: expected HTTP 201, got {submitted.status_code}: "
            f"{submitted.text}"
        )
    job = wait_done(client, submitted.json()["id"])
    if job["state"] != "done" or not job["ok"]:
        raise ServiceSmokeFailure(
            f"job {job['id']} finished {job['state']} (ok={job['ok']}): "
            f"{job['error'] or 'detection gap in the smoke grid'}"
        )

    served = client.get(f"/jobs/{job['id']}/report.csv")
    if served.status_code != 200:
        raise ServiceSmokeFailure(
            f"report.csv -> {served.status_code}: {served.text}"
        )
    if served.content != reference:
        raise ServiceSmokeFailure(
            "service CSV drifted from `make smoke` reference:\n"
            f"--- make smoke ---\n{reference.decode('utf-8')}\n"
            f"--- service ---\n{served.text}"
        )

    # Warm resubmission, same instance: answered from the store.
    deduped = expect_dedup(
        client.post("/jobs", {"grid": grid}), job["id"], "warm resubmit"
    )
    if client.get(f"/jobs/{deduped['id']}/report.csv").content != reference:
        raise ServiceSmokeFailure("deduped job served different CSV bytes")
    app.manager.close()

    # A second instance over the same store file — the across-runs contract.
    app2 = create_app(db=db, cache=cache_dir)
    client2 = ServiceClient(app2)
    rerun = expect_dedup(
        client2.post("/jobs", {"grid": grid}), job["id"], "second instance"
    )
    if client2.get(f"/jobs/{rerun['id']}/report.csv").content != reference:
        raise ServiceSmokeFailure("second instance served different CSV bytes")
    total = client2.get("/healthz").json()["jobs"]
    app2.manager.close()

    stats = job["stats"] or {}
    return "\n".join(
        [
            f"grid: {grid} ({job['scenarios']} scenarios, "
            f"{job['sessions_total']} unique sessions)",
            f"submitted job {job['id']}: done after {job['polls']} polls, "
            f"{stats.get('wall_clock_s', 0.0):.2f}s wall clock, "
            f"{stats.get('sessions_simulated', 0)} simulated / "
            f"{stats.get('cache_hits', 0) + stats.get('cache_disk_hits', 0)} "
            "from cache",
            f"report.csv: byte-identical to benchmarks/out/{grid}-sweep.csv "
            f"({len(reference)} B)",
            f"warm resubmit (job {deduped['id']}): HTTP 200, "
            f"deduped_from={deduped['deduped_from']}, 0 sessions simulated",
            f"second service instance (job {rerun['id']}): deduped across "
            f"runs from the same store, 0 sessions simulated",
            f"store: {total} jobs total",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", default="smoke", help="grid to submit")
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CI_CACHE_DIR", ".repro-session-cache"),
        help="session-cache dir shared with `make smoke` (default: "
        "$REPRO_CI_CACHE_DIR or .repro-session-cache)",
    )
    parser.add_argument(
        "--reference",
        default=None,
        help="the `make smoke` CSV to compare against "
        "(default: benchmarks/out/<grid>-sweep.csv)",
    )
    parser.add_argument(
        "--record",
        help="also write the measured numbers to this file "
        "(CI records benchmarks/out/smoke-service.txt)",
    )
    args = parser.parse_args(argv)
    ref_path = args.reference or os.path.join(
        "benchmarks", "out", f"{args.grid}-sweep.csv"
    )

    try:
        reference = reference_csv(ref_path, args.cache_dir, args.grid)
        with tempfile.TemporaryDirectory(prefix="repro-smoke-service-") as base:
            section = check_service(args.grid, args.cache_dir, reference, base)
    except ServiceSmokeFailure as failure:
        print(f"smoke-service: FAIL — {failure}")
        return 1
    print("smoke-service: OK\n" + section)
    if args.record:
        os.makedirs(os.path.dirname(args.record) or ".", exist_ok=True)
        with open(args.record, "w", encoding="utf-8") as handle:
            handle.write(
                "sweep service: HTTP parity + store dedup\n"
                "(scripts/smoke_service.py; WSGI app driven in-process)\n\n"
            )
            handle.write(section)
            handle.write("\n")
        print(f"recorded -> {args.record}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
