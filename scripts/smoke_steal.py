#!/usr/bin/env python
"""Elastic work stealing smoke: late joiners must shorten a straggling sweep.

Drives the smoke grid over the **HTTP shard-queue transport** against an
in-process sweep service (threaded WSGI + SQLite, no external server),
with ``steal=True`` carving many small shards, and checks four things:

1. **Parity** — the verdict CSV of every distributed run below is
   byte-identical to a serial reference sweep;
2. **Straggler baseline** — two deliberately *throttled* workers (each
   claim costs a built-in sleep, simulating slow hosts) finish the queue
   alone in some wall clock T_straggle;
3. **Elastic rebalance** — the same throttled pair *plus one unthrottled
   late joiner* (a real ``repro worker <url>`` subprocess started after
   the sweep is underway, knowing nothing but the queue URL) finishes in
   T_elastic < T_straggle, and the late joiner demonstrably executed at
   least one stolen shard;
4. **Warm repeat** — repeating the elastic run over its shared cache
   simulates zero sessions (the incremental invariant survives stealing).

Exit code 0 means every check held; any drift exits 1 with a diagnostic.
With ``--record PATH`` the measured numbers are written there (CI records
``benchmarks/out/steal_sweep.txt``).

Run from the repo root: ``python scripts/smoke_steal.py [--grid smoke]
[--record PATH]``.
"""

import argparse
import os
import socketserver
import subprocess
import sys
import tempfile
import textwrap
import threading
import time
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
sys.path.insert(0, _SRC)

import repro.experiments.distrib as distrib  # noqa: E402
from repro.experiments.batch import SessionCache  # noqa: E402
from repro.experiments.report import render_csv  # noqa: E402
from repro.experiments.scenario import grid_scenarios, run_sweep  # noqa: E402
from repro.service.app import create_app  # noqa: E402

CLAIM_THROTTLE_S = 2.0
LATE_JOIN_DELAY_S = 0.25

# A worker whose every claim costs CLAIM_THROTTLE_S: the reproducible
# stand-in for a straggling host, so the rebalance win is structural
# (idle-time removal) and shows up even on a single-CPU CI container.
_STRAGGLER_SOURCE = textwrap.dedent(
    """
    import sys, time

    sys.path.insert(0, sys.argv[4])
    from repro.experiments.distrib import Worker

    class Straggler(Worker):
        def _claim_next(self):
            time.sleep(float(sys.argv[3]))
            return super()._claim_next()

    Straggler(
        sys.argv[1], sys.argv[2], cache=sys.argv[5] or None,
        poll_s=0.1, idle_timeout_s=300,
    ).run()
    """
)


class SmokeFailure(Exception):
    pass


class _ThreadedWSGI(socketserver.ThreadingMixIn, WSGIServer):
    daemon_threads = True


class _QuietWSGI(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 - wsgiref signature
        pass


def _start_server():
    app = create_app(db=":memory:", background=True)
    server = make_server(
        "127.0.0.1", 0, app,
        server_class=_ThreadedWSGI, handler_class=_QuietWSGI,
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, env.get("PYTHONPATH")) if p
    )
    return env


def _throttled_worker_command(straggler_script, cache_dir):
    def command(self, work, worker_id):
        return [
            sys.executable,
            straggler_script,
            work.worker_target(),
            worker_id,
            str(CLAIM_THROTTLE_S),
            _SRC,
            cache_dir,
        ]

    return command


def _spawn_late_joiner(target, cache_dir, delay_s):
    """A real `repro worker <url>` subprocess, started mid-sweep."""
    holder = {}

    def launch():
        time.sleep(delay_s)
        holder["proc"] = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", target,
                "--id", "late-joiner",
                "--poll-s", "0.05",
                "--idle-timeout-s", "120",
                "--cache-dir", cache_dir,
            ],
            env=_subprocess_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )

    thread = threading.Thread(target=launch)
    thread.start()
    return thread, holder


def check_grid(grid, base_url, base):
    scenarios = grid_scenarios(grid)
    straggler_script = os.path.join(base, "straggler_worker.py")
    with open(straggler_script, "w", encoding="utf-8") as handle:
        handle.write(_STRAGGLER_SOURCE)

    serial = run_sweep(
        scenarios,
        cache=SessionCache(directory=os.path.join(base, "serial-cache")),
        grid=grid,
    )
    if not serial.ok:
        raise SmokeFailure(f"serial {grid} sweep not ok:\n{serial.render()}")
    reference_csv = render_csv(serial)

    original_command = distrib.Coordinator._worker_command
    # Straggler baseline: two throttled workers, nobody to help them.
    straggle_cache = os.path.join(base, "straggle-cache")
    distrib.Coordinator._worker_command = _throttled_worker_command(
        straggler_script, straggle_cache
    )
    try:
        straggle = run_sweep(
            scenarios,
            cache=SessionCache(directory=straggle_cache),
            grid=grid,
            hosts=2,
            steal=True,
            transport=f"{base_url}/queues/steal-straggle",
        )
    finally:
        distrib.Coordinator._worker_command = original_command
    if render_csv(straggle) != reference_csv:
        raise SmokeFailure("verdict drift on the straggler baseline run")
    if straggle.requeues:
        raise SmokeFailure(
            f"straggler baseline forfeited {straggle.requeues} claim(s); "
            "throttled workers should be slow, not condemned"
        )

    # Elastic run: same throttled pair + one real late-joining subprocess.
    elastic_cache = os.path.join(base, "elastic-cache")
    elastic_target = f"{base_url}/queues/steal-elastic"
    distrib.Coordinator._worker_command = _throttled_worker_command(
        straggler_script, elastic_cache
    )
    joiner_thread, joiner = _spawn_late_joiner(
        elastic_target, elastic_cache, LATE_JOIN_DELAY_S
    )
    try:
        elastic = run_sweep(
            scenarios,
            cache=SessionCache(directory=elastic_cache),
            grid=grid,
            hosts=2,
            steal=True,
            transport=elastic_target,
        )
    finally:
        distrib.Coordinator._worker_command = original_command
        joiner_thread.join(timeout=10)
        proc = joiner.get("proc")
        if proc is not None:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
    if render_csv(elastic) != reference_csv:
        raise SmokeFailure("verdict drift on the elastic (late-joiner) run")
    late = next(
        (h for h in elastic.host_stats if h["worker"] == "late-joiner"), None
    )
    if late is None or late["shards"] < 1:
        raise SmokeFailure(
            "the late joiner never stole a shard; host stats: "
            f"{elastic.host_stats}"
        )
    if elastic.wall_clock_s >= straggle.wall_clock_s:
        raise SmokeFailure(
            "the late joiner did not shorten the straggling sweep: "
            f"elastic {elastic.wall_clock_s:.2f}s vs straggler baseline "
            f"{straggle.wall_clock_s:.2f}s"
        )

    # Warm repeat over the elastic run's cache: stealing keeps the
    # incremental invariant (nothing dispatched, nothing re-simulated).
    repeat = run_sweep(
        scenarios,
        cache=SessionCache(directory=elastic_cache),
        grid=grid,
        hosts=2,
        steal=True,
        transport=f"{base_url}/queues/steal-repeat",
    )
    if repeat.sessions_simulated != 0 or repeat.cache_misses != 0:
        raise SmokeFailure(
            "warm repeat re-simulated "
            f"{repeat.sessions_simulated} sessions; expected 0"
        )
    if render_csv(repeat) != reference_csv:
        raise SmokeFailure("verdict drift on the warm repeat")

    host_bits = "; ".join(
        f"{h['worker']}: {h['shards']} shard(s)" for h in elastic.host_stats
    )
    return "\n".join(
        [
            f"grid: {grid} ({len(scenarios)} scenarios, "
            f"{serial.sessions_total} unique sessions, "
            f"{sum(h['shards'] for h in elastic.host_stats)} steal shards)",
            f"serial (hosts=1):                    {serial.wall_clock_s:7.2f}s",
            f"2 throttled stragglers (no help):    {straggle.wall_clock_s:7.2f}s",
            f"stragglers + late joiner (elastic):  {elastic.wall_clock_s:7.2f}s"
            f"  [{host_bits}]",
            f"warm repeat:                         {repeat.wall_clock_s:7.2f}s"
            "  (0 sessions simulated)",
            "verdict parity: CSV rows byte-identical across serial / "
            "straggler baseline / elastic / warm repeat (all over HTTP)",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid", default="smoke", help="grid to check (default: smoke)"
    )
    parser.add_argument(
        "--record",
        help="also write the measured numbers to this file "
        "(CI records benchmarks/out/steal_sweep.txt)",
    )
    args = parser.parse_args(argv)

    server, base_url = _start_server()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-steal-") as base:
            try:
                section = check_grid(args.grid, base_url, base)
            except SmokeFailure as failure:
                print(f"smoke-steal: FAIL — {failure}")
                return 1
    finally:
        server.shutdown()
    print("smoke-steal: OK\n" + section)
    if args.record:
        os.makedirs(os.path.dirname(args.record) or ".", exist_ok=True)
        with open(args.record, "w", encoding="utf-8") as handle:
            handle.write(
                "elastic work stealing: HTTP shard queue + late joiner\n"
                "(scripts/smoke_steal.py; throttled stragglers make the\n"
                "rebalance win structural, not CPU-count-dependent)\n\n"
            )
            handle.write(section)
            handle.write("\n")
        print(f"recorded -> {args.record}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
