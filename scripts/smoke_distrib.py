#!/usr/bin/env python
"""Distributed smoke parity check (the `make smoke-distrib` target).

Runs the smoke grid three ways and asserts the distribution layer changes
*nothing* about the verdicts:

1. single-host (`hosts=1`) into its own cache dir — the reference;
2. `hosts=2` (two subprocess workers sharing a cache dir) — the CSV report
   must be byte-identical to the reference;
3. `hosts=2` again over the same shared cache dir — must simulate zero
   sessions (the incremental invariant survives distribution).

Exit code 0 means all three hold; any drift or failure exits 1 with a
diagnostic. Run from the repo root: ``python scripts/smoke_distrib.py``
(the script puts ``src/`` on ``sys.path`` itself).
"""

import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.experiments.batch import SessionCache  # noqa: E402
from repro.experiments.report import render_csv  # noqa: E402
from repro.experiments.scenario import grid_scenarios, run_sweep  # noqa: E402


def fail(message: str) -> int:
    print(f"smoke-distrib: FAIL — {message}")
    return 1


def main() -> int:
    scenarios = grid_scenarios("smoke")
    with tempfile.TemporaryDirectory(prefix="repro-smoke-distrib-") as base:
        serial = run_sweep(
            scenarios,
            cache=SessionCache(directory=os.path.join(base, "serial-cache")),
            grid="smoke",
        )
        if not serial.ok:
            return fail(f"single-host smoke sweep not ok:\n{serial.render()}")

        shared_cache_dir = os.path.join(base, "distrib-cache")
        distributed = run_sweep(
            scenarios,
            cache=SessionCache(directory=shared_cache_dir),
            grid="smoke",
            hosts=2,
            work_dir=os.path.join(base, "work"),
        )
        if not distributed.ok:
            return fail(f"--hosts 2 smoke sweep not ok:\n{distributed.render()}")
        if render_csv(distributed) != render_csv(serial):
            return fail(
                "verdict drift between --hosts 1 and --hosts 2:\n"
                f"--- hosts=1 ---\n{render_csv(serial)}\n"
                f"--- hosts=2 ---\n{render_csv(distributed)}"
            )
        hosts_used = len(distributed.host_stats)
        if not hosts_used:
            return fail("--hosts 2 run reported no per-host stats")

        repeat = run_sweep(
            scenarios,
            cache=SessionCache(directory=shared_cache_dir),
            grid="smoke",
            hosts=2,
            work_dir=os.path.join(base, "work-repeat"),
        )
        if repeat.sessions_simulated != 0 or repeat.cache_misses != 0:
            return fail(
                "repeat over the shared cache dir re-simulated "
                f"{repeat.sessions_simulated} sessions "
                f"({repeat.cache_misses} misses); expected 0"
            )
        if render_csv(repeat) != render_csv(serial):
            return fail("verdict drift on the warm repeat")

        print(
            "smoke-distrib: OK — "
            f"{len(scenarios)} scenarios, "
            f"{serial.sessions_total} unique sessions; "
            f"hosts=2 parity holds across {hosts_used} worker host(s) "
            f"({distributed.wall_clock_s:.1f}s distributed vs "
            f"{serial.wall_clock_s:.1f}s single-host); "
            "warm repeat simulated 0 sessions"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
