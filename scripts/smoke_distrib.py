#!/usr/bin/env python
"""Distributed parity + payload economics check (`make smoke-distrib`).

For each requested grid, runs the sweep four ways and asserts the
distribution layer changes *nothing* about the verdicts while shrinking
what travels:

1. single-host (`hosts=1`) into its own cache dir — the reference;
2. `hosts=2 --workers N` (verdict shipping: subprocess workers scoring
   their own shards through parallel BatchRunner batches) — the CSV report
   must be byte-identical to the reference;
3. `hosts=2` again over the same shared cache dir — must simulate zero
   sessions (the incremental invariant survives distribution);
4. `hosts=2 --ship-summaries` (the legacy full-summary transport) — still
   byte-identical, and its `done/` payload must be ≥ 5× the verdict-row
   payload (the whole point of worker-side scoring).

Exit code 0 means every check held for every grid; any drift or failure
exits 1 with a diagnostic. With ``--record PATH`` the measured numbers are
written there (the CI target records into
``benchmarks/out/distributed_sweep.txt``). Recording is *per grid
section*: a run refreshes the sections for the grids it actually ran and
preserves the rest, so `make smoke-distrib` (smoke only) never clobbers
the committed full-grid numbers.

Run from the repo root: ``python scripts/smoke_distrib.py [--grid smoke]
[--workers 2] [--record PATH]`` (the script puts ``src/`` on ``sys.path``
itself; ``--grid`` may repeat).
"""

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.experiments.batch import SessionCache  # noqa: E402
from repro.experiments.distrib import PAYLOAD_SHRINK_FLOOR  # noqa: E402
from repro.experiments.report import render_csv  # noqa: E402
from repro.experiments.scenario import grid_scenarios, run_sweep  # noqa: E402


class ParityFailure(Exception):
    pass


def check_grid(grid: str, workers: int, base: str) -> str:
    """Run one grid through all four topologies; returns the report section."""
    scenarios = grid_scenarios(grid)

    serial = run_sweep(
        scenarios,
        cache=SessionCache(directory=os.path.join(base, "serial-cache")),
        grid=grid,
    )
    if not serial.ok:
        raise ParityFailure(f"single-host {grid} sweep not ok:\n{serial.render()}")
    reference_csv = render_csv(serial)

    shared_cache_dir = os.path.join(base, "distrib-cache")
    distributed = run_sweep(
        scenarios,
        cache=SessionCache(directory=shared_cache_dir),
        grid=grid,
        hosts=2,
        workers=workers,
        work_dir=os.path.join(base, "work"),
    )
    if not distributed.ok:
        raise ParityFailure(
            f"--hosts 2 --workers {workers} {grid} sweep not ok:\n"
            f"{distributed.render()}"
        )
    if render_csv(distributed) != reference_csv:
        raise ParityFailure(
            f"verdict drift between --hosts 1 and --hosts 2 --workers {workers}:\n"
            f"--- hosts=1 ---\n{reference_csv}\n"
            f"--- hosts=2 ---\n{render_csv(distributed)}"
        )
    if not distributed.host_stats:
        raise ParityFailure("--hosts 2 run reported no per-host stats")

    repeat = run_sweep(
        scenarios,
        cache=SessionCache(directory=shared_cache_dir),
        grid=grid,
        hosts=2,
        workers=workers,
        work_dir=os.path.join(base, "work-repeat"),
    )
    if repeat.sessions_simulated != 0 or repeat.cache_misses != 0:
        raise ParityFailure(
            "repeat over the shared cache dir re-simulated "
            f"{repeat.sessions_simulated} sessions "
            f"({repeat.cache_misses} misses); expected 0"
        )
    if render_csv(repeat) != reference_csv:
        raise ParityFailure("verdict drift on the warm repeat")

    shipped = run_sweep(
        scenarios,
        cache=SessionCache(directory=os.path.join(base, "shipped-cache")),
        grid=grid,
        hosts=2,
        ship_summaries=True,
        work_dir=os.path.join(base, "work-shipped"),
    )
    if render_csv(shipped) != reference_csv:
        raise ParityFailure("verdict drift under --ship-summaries")
    if distributed.payload_bytes <= 0 or shipped.payload_bytes <= 0:
        raise ParityFailure(
            "payload accounting missing: verdict "
            f"{distributed.payload_bytes} B, summaries {shipped.payload_bytes} B"
        )
    shrink = shipped.payload_bytes / distributed.payload_bytes
    if shrink < PAYLOAD_SHRINK_FLOOR:
        raise ParityFailure(
            f"verdict payload only {shrink:.1f}x smaller than summaries "
            f"({distributed.payload_bytes} vs {shipped.payload_bytes} B); "
            f"expected >= {PAYLOAD_SHRINK_FLOOR:.0f}x"
        )

    host_bits = "; ".join(
        f"{h['worker']}: {h['sessions']} sessions in {h['wall_clock_s']:.1f}s"
        for h in distributed.host_stats
    )
    attacks = len(serial.attack_outcomes)
    return "\n".join(
        [
            f"grid: {grid} ({len(scenarios)} scenarios, "
            f"{serial.sessions_total} unique sessions)",
            f"attacks detected: {serial.attacks_detected}/{attacks}; "
            f"false positives: {serial.false_positives}",
            f"serial (hosts=1):              {serial.wall_clock_s:7.2f}s",
            f"hosts=2 workers={workers} (verdicts): {distributed.wall_clock_s:7.2f}s"
            f"  [{host_bits}]",
            f"warm repeat:                   {repeat.wall_clock_s:7.2f}s"
            "  (0 sessions simulated, 0 dispatched)",
            f"hosts=2 --ship-summaries:      {shipped.wall_clock_s:7.2f}s",
            f"done/ payload: verdict rows {distributed.payload_bytes} B vs "
            f"summaries {shipped.payload_bytes} B ({shrink:.1f}x smaller)",
            "verdict parity: CSV rows byte-identical across serial / "
            f"hosts=2 workers={workers} / warm repeat / --ship-summaries",
        ]
    )


def _merge_record(path: str, fresh: "dict[str, str]", workers: int) -> None:
    """Write the record file, replacing only the sections just re-measured.

    Sections are blank-line-separated blocks whose first line is
    ``grid: <name> ...``; existing sections for grids *not* in this run
    are preserved in place, so a smoke-only CI run never clobbers the
    committed full-grid numbers.
    """
    sections: "dict[str, str]" = {}
    try:
        with open(path, encoding="utf-8") as handle:
            existing = handle.read()
    except FileNotFoundError:
        existing = ""
    for block in existing.split("\n\n"):
        block = block.strip("\n")
        match = re.match(r"^grid: (\S+)", block)
        if match:
            sections[match.group(1)] = block
    sections.update(fresh)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "distributed sweep: parity + done/ payload economics\n"
            f"(scripts/smoke_distrib.py --workers {workers}; sections refresh "
            "independently per grid)\n\n"
        )
        handle.write("\n\n".join(sections.values()))
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid",
        action="append",
        help="grid(s) to check (repeatable; default: smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="per-host BatchRunner processes for the composed run (default: 2)",
    )
    parser.add_argument(
        "--record",
        help="also write the measured numbers to this file "
        "(CI records benchmarks/out/distributed_sweep.txt)",
    )
    args = parser.parse_args(argv)
    grids = args.grid or ["smoke"]

    sections = {}
    for grid in grids:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-distrib-") as base:
            try:
                sections[grid] = check_grid(grid, args.workers, base)
            except ParityFailure as failure:
                print(f"smoke-distrib: FAIL — {failure}")
                return 1
    print("smoke-distrib: OK\n" + "\n\n".join(sections.values()))
    if args.record:
        _merge_record(args.record, sections, args.workers)
        print(f"recorded -> {args.record}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
