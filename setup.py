"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work offline."""
from setuptools import setup

setup()
