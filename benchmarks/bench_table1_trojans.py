"""Benchmark: regenerate **Table I** — the nine-Trojan evaluation.

Paper shape: T0 prints cleanly; every Trojan T1–T9 manifests its designed
effect (part modification, denial of service, or hardware destruction).
"""

from benchmarks.conftest import write_artifact
from repro.experiments.table1 import render_table1, run_table1


def test_table1_trojan_suite(benchmark, out_dir, batch_kwargs):
    rows = benchmark.pedantic(run_table1, kwargs=batch_kwargs, rounds=1, iterations=1)
    text = render_table1(rows)
    write_artifact(out_dir, "table1.txt", text)
    print("\n" + text)

    by_id = {row.trojan_id: row for row in rows}
    assert len(rows) == 10

    # T0: the golden print is clean and complete.
    assert by_id["T0"].manifested

    # Every Trojan manifests its Table I effect.
    for trojan_id in (f"T{i}" for i in range(1, 10)):
        assert by_id[trojan_id].manifested, f"{trojan_id} failed to manifest: {by_id[trojan_id].observed}"

    # Category assignments match the paper's taxonomy.
    assert by_id["T6"].category == "DoS"
    assert by_id["T7"].category == "D"
    assert by_id["T8"].category == "DoS"
    for pm in ("T1", "T2", "T3", "T4", "T5", "T9"):
        assert by_id[pm].category == "PM"
