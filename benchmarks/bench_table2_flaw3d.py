"""Benchmark: regenerate **Table II** — Flaw3D Trojans, all detected.

Paper shape: all eight test cases (reduction 0.5/0.85/0.9/0.98, relocation
5/10/20/100) are detected; a clean control print is not flagged. The
stealthiest cases (4 and 8) are the interesting ones: case 4 survives the
5 % per-transaction margin and falls to the final 0 %-margin check; case 8
relocates rarely but its timeline shift still produces mismatches.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.table2 import run_table2


def test_table2_flaw3d_detection(benchmark, out_dir, batch_kwargs):
    result = benchmark.pedantic(run_table2, kwargs=batch_kwargs, rounds=1, iterations=1)
    text = result.render()
    write_artifact(out_dir, "table2.txt", text)
    print("\n" + text)

    # Headline: all eight Trojans detected, no false positives.
    assert result.all_detected
    assert not result.false_positive

    by_case = {row.case: row for row in result.rows}
    # Case 4 (2% reduction): stealthy — caught by the final exact check.
    assert by_case[4].report.final_check_failed
    # Case 1 (50% reduction): blatant — floods per-transaction mismatches.
    assert by_case[1].report.mismatch_count > 10
    # Relocation preserves total filament: final totals equal, detection via
    # transient mismatches instead.
    for case in (5, 6, 7):
        assert by_case[case].report.mismatch_count > 0

    # Clean control drift stays inside the margin (the 5% justification).
    assert result.control_report.largest_percent_diff < 5.0
