"""Benchmark: the incremental sweep engine — cold vs warm wall clock.

Two claims about the content-keyed :class:`SessionCache` under
``repro sweep``:

1. **Cold** — the first sweep over an empty persistent cache directory
   simulates every unique session and persists each summary.
2. **Warm** — repeating the identical sweep through a *fresh* cache
   instance over the same directory re-simulates **zero** sessions (the
   incremental-sweep invariant), serving everything from disk.

The wall-clock ratio is recorded but not asserted — on the 1-CPU CI
container absolute timings wobble; the zero-miss accounting is the
invariant that must hold everywhere.
"""

import time

from benchmarks.conftest import write_artifact
from repro.experiments.batch import SessionCache, cache_schema_version
from repro.experiments.scenario import grid_scenarios, run_sweep


def test_incremental_sweep_cold_vs_warm(benchmark, out_dir, tmp_path):
    cache_dir = str(tmp_path / "session-cache")
    scenarios = grid_scenarios("smoke")

    t0 = time.perf_counter()
    cold = run_sweep(scenarios, cache=SessionCache(directory=cache_dir), grid="smoke")
    cold_s = time.perf_counter() - t0
    assert cold.ok
    assert cold.sessions_simulated == cold.sessions_total

    def warm_run():
        # A fresh instance per run: everything must come from disk, not from
        # process memory.
        return run_sweep(
            scenarios, cache=SessionCache(directory=cache_dir), grid="smoke"
        )

    t0 = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    # The invariant: a repeat sweep is a zero-resimulation no-op.
    assert warm.cache_misses == 0
    assert warm.sessions_simulated == 0
    assert warm.cache_disk_hits == cold.sessions_total
    assert warm.ok == cold.ok

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        f"grid: smoke ({len(scenarios)} scenarios, "
        f"{cold.sessions_total} unique sessions)",
        f"cache schema version: {cache_schema_version()}",
        f"cold sweep (empty cache dir):  {cold_s:7.2f}s  "
        f"({cold.cache_misses} misses, {cold.cache_hits} hits)",
        f"warm sweep (fresh instance):   {warm_s:7.2f}s  "
        f"({warm.cache_misses} misses, {warm.cache_hits} hits, "
        f"{warm.cache_disk_hits} from disk)",
        f"warm speedup: {speedup:.1f}x (recorded, not asserted)",
        "sessions re-simulated on repeat: 0",
    ]
    text = "\n".join(lines)
    write_artifact(out_dir, "incremental_sweep.txt", text)
    print("\n" + text)
