"""Benchmark: the incremental sweep engine — cold vs warm, serial vs distributed.

Three claims about ``repro sweep`` over the content-keyed
:class:`SessionCache`:

1. **Cold** — the first sweep over an empty persistent cache directory
   simulates every unique session and persists each summary.
2. **Warm** — repeating the identical sweep through a *fresh* cache
   instance over the same directory re-simulates **zero** sessions (the
   incremental-sweep invariant), serving everything from disk.
3. **Distributed** — the same sweep through ``hosts=2 --workers 2``
   subprocess workers (:mod:`repro.experiments.distrib`, worker-side
   scoring) yields identical verdicts at a small fraction of the
   ``--ship-summaries`` payload bytes; its wall clock is recorded against
   the serial run.

Wall-clock ratios are recorded but not asserted — on the 1-CPU CI container
absolute timings wobble; the zero-miss accounting and verdict parity are
the invariants that must hold everywhere.
"""

import time

from benchmarks.conftest import write_artifact
from repro.experiments.batch import SessionCache, cache_schema_version
from repro.experiments.distrib import PAYLOAD_SHRINK_FLOOR
from repro.experiments.scenario import grid_scenarios, run_sweep


def test_incremental_sweep_cold_vs_warm(benchmark, out_dir, tmp_path):
    cache_dir = str(tmp_path / "session-cache")
    scenarios = grid_scenarios("smoke")

    t0 = time.perf_counter()
    cold = run_sweep(scenarios, cache=SessionCache(directory=cache_dir), grid="smoke")
    cold_s = time.perf_counter() - t0
    assert cold.ok
    assert cold.sessions_simulated == cold.sessions_total

    def warm_run():
        # A fresh instance per run: everything must come from disk, not from
        # process memory.
        return run_sweep(
            scenarios, cache=SessionCache(directory=cache_dir), grid="smoke"
        )

    t0 = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    # The invariant: a repeat sweep is a zero-resimulation no-op.
    assert warm.cache_misses == 0
    assert warm.sessions_simulated == 0
    assert warm.cache_disk_hits == cold.sessions_total
    assert warm.ok == cold.ok

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        f"grid: smoke ({len(scenarios)} scenarios, "
        f"{cold.sessions_total} unique sessions)",
        f"cache schema version: {cache_schema_version()}",
        f"cold sweep (empty cache dir):  {cold_s:7.2f}s  "
        f"({cold.cache_misses} misses, {cold.cache_hits} hits)",
        f"warm sweep (fresh instance):   {warm_s:7.2f}s  "
        f"({warm.cache_misses} misses, {warm.cache_hits} hits, "
        f"{warm.cache_disk_hits} from disk)",
        f"warm speedup: {speedup:.1f}x (recorded, not asserted)",
        "sessions re-simulated on repeat: 0",
    ]
    text = "\n".join(lines)
    write_artifact(out_dir, "incremental_sweep.txt", text)
    print("\n" + text)


def test_distributed_vs_serial_wall_clock(benchmark, out_dir, tmp_path):
    """Record the hosts=2 × workers=2 fan-out against the serial baseline.

    The parity assertions (identical verdicts, zero re-simulation on a warm
    shared cache, a ≥ 5× verdict-vs-summary payload shrink) hold on any
    machine; the speedup is recorded only — on a 1-CPU container worker
    subprocesses merely time-share, and the smoke grid is small enough that
    spawn overhead can dominate. (The authoritative payload/parity artifact
    is benchmarks/out/distributed_sweep.txt, written by `make
    smoke-distrib`; this benchmark records its own wall-clock view in
    distributed_bench.txt.)
    """
    scenarios = grid_scenarios("smoke")

    t0 = time.perf_counter()
    serial = run_sweep(
        scenarios,
        cache=SessionCache(directory=str(tmp_path / "serial-cache")),
        grid="smoke",
    )
    serial_s = time.perf_counter() - t0
    assert serial.ok

    distrib_cache = str(tmp_path / "distrib-cache")

    def distributed_run():
        return run_sweep(
            scenarios,
            cache=SessionCache(directory=distrib_cache),
            grid="smoke",
            hosts=2,
            workers=2,
            work_dir=str(tmp_path / "work"),
        )

    t0 = time.perf_counter()
    distributed = benchmark.pedantic(distributed_run, rounds=1, iterations=1)
    distributed_s = time.perf_counter() - t0

    # Parity: distribution must not change a single verdict.
    for a, b in zip(serial.outcomes, distributed.outcomes):
        assert {k: v.as_dict() for k, v in a.verdicts.items()} == {
            k: v.as_dict() for k, v in b.verdicts.items()
        }
    assert distributed.ok == serial.ok
    assert distributed.transport == "verdict rows"
    assert distributed.payload_bytes > 0

    # Warm repeat over the shared cache dir: the distributed path keeps the
    # zero-resimulation invariant (and spawns no workers at all).
    t0 = time.perf_counter()
    repeat = run_sweep(
        scenarios,
        cache=SessionCache(directory=distrib_cache),
        grid="smoke",
        hosts=2,
        workers=2,
        work_dir=str(tmp_path / "work-repeat"),
    )
    repeat_s = time.perf_counter() - t0
    assert repeat.cache_misses == 0
    assert repeat.sessions_simulated == 0
    assert repeat.payload_bytes == 0  # nothing dispatched, nothing shipped

    # The legacy transport still agrees, at a multiple of the bytes.
    shipped = run_sweep(
        scenarios,
        cache=SessionCache(directory=str(tmp_path / "shipped-cache")),
        grid="smoke",
        hosts=2,
        ship_summaries=True,
        work_dir=str(tmp_path / "work-shipped"),
    )
    assert shipped.ok == serial.ok
    assert shipped.payload_bytes >= PAYLOAD_SHRINK_FLOOR * distributed.payload_bytes

    host_bits = "; ".join(
        f"{h['worker']}: {h['sessions']} sessions in {h['wall_clock_s']:.1f}s"
        for h in distributed.host_stats
    )
    lines = [
        f"grid: smoke ({len(scenarios)} scenarios, "
        f"{serial.sessions_total} unique sessions)",
        f"serial sweep (hosts=1):          {serial_s:7.2f}s",
        f"distributed (hosts=2 workers=2): {distributed_s:7.2f}s  [{host_bits}]",
        f"warm distributed repeat:         {repeat_s:7.2f}s  "
        f"(0 sessions simulated, {repeat.cache_misses} misses)",
        f"distributed/serial ratio: {distributed_s / serial_s:.2f}x "
        "(recorded, not asserted; subprocess spawn overhead dominates on "
        "small grids and 1-CPU hosts)",
        f"done/ payload: verdict rows {distributed.payload_bytes} B vs "
        f"summaries {shipped.payload_bytes} B "
        f"({shipped.payload_bytes / distributed.payload_bytes:.1f}x smaller)",
        "verdict parity: identical across hosts=1 / hosts=2x2 / warm repeat "
        "/ --ship-summaries",
    ]
    text = "\n".join(lines)
    write_artifact(out_dir, "distributed_bench.txt", text)
    print("\n" + text)


def test_steal_vs_lpt_wall_clock(benchmark, out_dir, tmp_path):
    """Record elastic (steal=True, many small shards) against classic LPT
    (one balanced shard per host) on the same grid and host count.

    Both topologies must produce identical verdicts; the wall clocks are
    recorded, not asserted — with healthy equal-speed workers the two run
    neck and neck (stealing's win appears under stragglers and late
    joiners, which `make smoke-steal` exercises deterministically), so
    this benchmark pins the *overhead* of finer sharding instead: the
    steal run's extra shards must not cost more than the spawn-dominated
    noise floor.
    """
    scenarios = grid_scenarios("smoke")

    def lpt_run():
        return run_sweep(
            scenarios,
            cache=SessionCache(directory=str(tmp_path / "lpt-cache")),
            grid="smoke",
            hosts=2,
            work_dir=str(tmp_path / "lpt-work"),
        )

    t0 = time.perf_counter()
    lpt = benchmark.pedantic(lpt_run, rounds=1, iterations=1)
    lpt_s = time.perf_counter() - t0
    assert lpt.ok

    t0 = time.perf_counter()
    steal = run_sweep(
        scenarios,
        cache=SessionCache(directory=str(tmp_path / "steal-cache")),
        grid="smoke",
        hosts=2,
        steal=True,
        work_dir=str(tmp_path / "steal-work"),
    )
    steal_s = time.perf_counter() - t0

    # Parity: shard granularity must not change a single verdict.
    for a, b in zip(lpt.outcomes, steal.outcomes):
        assert {k: v.as_dict() for k, v in a.verdicts.items()} == {
            k: v.as_dict() for k, v in b.verdicts.items()
        }
    assert steal.ok == lpt.ok
    lpt_shards = sum(h["shards"] for h in lpt.host_stats)
    steal_shards = sum(h["shards"] for h in steal.host_stats)
    assert steal_shards >= lpt_shards

    lines = [
        f"grid: smoke ({len(scenarios)} scenarios, "
        f"{lpt.sessions_total} unique sessions), hosts=2",
        f"LPT (one shard per host):   {lpt_s:7.2f}s  ({lpt_shards} shards)",
        f"steal (many small shards):  {steal_s:7.2f}s  ({steal_shards} shards)",
        f"steal/LPT ratio: {steal_s / lpt_s:.2f}x (recorded, not asserted; "
        "equal-speed workers tie — stealing pays off under stragglers, "
        "see steal_sweep.txt)",
        "verdict parity: identical across LPT / steal shard topologies",
    ]
    text = "\n".join(lines)
    write_artifact(out_dir, "steal_bench.txt", text)
    print("\n" + text)
