"""Ablation benchmark: OFFRAMPS lossless counts vs an emulated side-channel.

The paper's related-platforms discussion claims its direct-signal access is
"uniquely able to modify or analyze prints with no loss of data" compared to
acoustic/power/EM side-channel detectors. This benchmark quantifies the gap
on the Table II extremes:

* the gross attack (50 % reduction) — both detectors catch it;
* the stealthy attack (2 % reduction) — only the lossless pipeline catches
  it, via the final 0 %-margin check the side-channel's noise floor can
  never support.
"""

from benchmarks.conftest import write_artifact
from repro.detection.baselines import SideChannelDetector, SideChannelModel
from repro.detection.comparator import CaptureComparator
from repro.experiments.runner import run_print
from repro.experiments.workloads import sliced_program, standard_part
from repro.gcode.transforms.flaw3d import apply_reduction


def _run_experiment():
    program = sliced_program(standard_part())
    golden = run_print(program, noise_sigma=0.0005, noise_seed=8801)
    control = run_print(program, noise_sigma=0.0005, noise_seed=8802)
    gross = run_print(apply_reduction(program, 0.5), noise_sigma=0.0005, noise_seed=8803)
    stealthy = run_print(apply_reduction(program, 0.98), noise_sigma=0.0005, noise_seed=8804)

    offramps = CaptureComparator()
    side_channel = SideChannelDetector(SideChannelModel(seed=42))
    side_channel.calibrate_threshold(
        golden.capture.transactions, control.capture.transactions
    )

    rows = {}
    for name, suspect in (("control", control), ("reduce0.5", gross), ("reduce0.98", stealthy)):
        lossless = offramps.compare_captures(golden.capture, suspect.capture)
        lossy = side_channel.compare(
            golden.capture.transactions, suspect.capture.transactions
        )
        rows[name] = (lossless, lossy)
    return side_channel.threshold, rows


def test_lossless_vs_lossy_detection(benchmark, out_dir):
    threshold, rows = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)

    lines = [f"side-channel calibrated threshold: {threshold * 100:.1f}%", ""]
    lines.append(f"{'case':<12} {'OFFRAMPS (lossless)':<52} side-channel (lossy)")
    for name, (lossless, lossy) in rows.items():
        lines.append(f"{name:<12} {lossless.summary():<52} {lossy.summary()}")
    text = "\n".join(lines)
    write_artifact(out_dir, "baseline_sidechannel.txt", text)
    print("\n" + text)

    # Neither detector false-positives on the clean control.
    assert not rows["control"][0].trojan_likely
    assert not rows["control"][1].trojan_likely
    # Both catch the gross 50% reduction.
    assert rows["reduce0.5"][0].trojan_likely
    assert rows["reduce0.5"][1].trojan_likely
    # Only the lossless pipeline catches the stealthy 2% reduction.
    assert rows["reduce0.98"][0].trojan_likely
    assert not rows["reduce0.98"][1].trojan_likely
    # The side-channel's noise floor forces a far coarser threshold than 5%.
    assert threshold > 0.05
