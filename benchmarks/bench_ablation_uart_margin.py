"""Ablation benchmark: UART transaction period vs detection margin.

The paper argues its 5 % margin "can be made significantly smaller with a
faster communication protocol". This sweep quantifies the claim: faster
transactions shrink the clean-print drift (enabling smaller margins without
false positives), which improves *transient* detection of the stealthiest
Trojans — detection that doesn't have to wait for the end-of-print check.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.ablation import run_ablation


def test_uart_period_margin_sweep(benchmark, out_dir, batch_kwargs):
    result = benchmark.pedantic(run_ablation, kwargs=batch_kwargs, rounds=1, iterations=1)
    text = result.render()
    write_artifact(out_dir, "ablation_uart_margin.txt", text)
    print("\n" + text)

    # At the paper's operating point (100 ms, 5%) the clean print passes.
    cell = next(
        c for c in result.cells if c.period_ms == 100 and abs(c.margin - 0.05) < 1e-9
    )
    assert not cell.false_positive

    # The 5% margin produces no false positives at any swept period, and the
    # clean-print drift stays below it everywhere — the margin choice is
    # sound across the whole sweep.
    for c in result.cells:
        if abs(c.margin - 0.05) < 1e-9:
            assert not c.false_positive, f"false positive at {c.period_ms}ms"
        assert c.clean_max_drift_percent < 5.0

    # The stealthy 2% reduction never trips the 5% transient margin at any
    # period — the final 0%-margin check is load-bearing for it (Table II
    # case 4's story).
    for c in result.cells:
        if abs(c.margin - 0.05) < 1e-9:
            assert not c.transient_detections["reduce0.98"]

    # Faster transactions improve *transient* sensitivity to the rare
    # relocation (the direction of the paper's faster-protocol suggestion):
    # at the finest margin, the fastest period must do at least as well as
    # the slowest.
    finest = min(c.margin for c in result.cells)
    by_period = {
        c.period_ms: c.transient_detections["relocate100"]
        for c in result.cells
        if abs(c.margin - finest) < 1e-9
    }
    periods = sorted(by_period)
    assert by_period[periods[0]] >= by_period[periods[-1]]
