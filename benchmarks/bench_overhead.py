"""Benchmark: regenerate the **Section V-B overhead** analysis.

Paper shape: signals between the boards stay under 20 kHz with >= 1 µs pulse
widths, so the MITM's 12.923 ns worst-case propagation delay is negligible,
and running the monitoring hardware has no effect on the print (identical
step totals through the FPGA vs bypass).
"""

from benchmarks.conftest import write_artifact
from repro.experiments.overhead import run_overhead


def test_overhead_is_negligible(benchmark, out_dir, batch_kwargs):
    experiment = benchmark.pedantic(run_overhead, kwargs=batch_kwargs, rounds=1, iterations=1)
    text = experiment.render()
    write_artifact(out_dir, "overhead.txt", text)
    print("\n" + text)

    report = experiment.report
    # The signal envelope matches the paper's measurements.
    assert report.max_signal_frequency_hz < 20_000.0
    assert report.min_pulse_width_ns >= 1_000
    # The delay budget verdict.
    assert report.propagation_delay_ns < 13.0
    assert report.negligible
    assert report.delay_fraction_of_pulse < 0.02
    # "No effect on print quality while running our detection hardware."
    assert experiment.no_quality_effect
    assert experiment.bypass_counts == experiment.mitm_counts
