"""Benchmark: regenerate **Figure 4** — golden/Trojan excerpts + tool output.

Paper shape: the relocation Trojan produces transactions whose X values
diverge sharply from the golden at the same index; the tool prints the
mismatching rows, the largest percent difference, transaction totals, and
"Trojan likely!".
"""

from benchmarks.conftest import write_artifact
from repro.experiments.figure4 import run_figure4


def test_figure4_relocation_detection(benchmark, out_dir, batch_kwargs):
    output = benchmark.pedantic(run_figure4, kwargs=batch_kwargs, rounds=1, iterations=1)
    text = output.render()
    write_artifact(out_dir, "figure4.txt", text)
    print("\n" + text)

    report = output.report
    assert report.trojan_likely
    assert report.mismatch_count > 0
    # Figure 4's mismatches are on motion axes (the timeline shift).
    assert any(m.column in ("X", "Y") for m in report.mismatches)
    # The rendered panels carry the paper's formats.
    assert output.golden_excerpt.startswith("Index, X, Y, Z, E")
    assert "Trojan likely!" in output.detector_output
    assert "Largest percent difference found:" in output.detector_output
    # Large divergence at matched indices, like the paper's 93.19%.
    assert report.largest_percent_diff > 20.0
