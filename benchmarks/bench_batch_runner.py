"""Benchmark: the batched experiment runner — parity, speedup, cache.

Three claims about the :class:`~repro.experiments.batch.BatchRunner`:

1. **Parity** — ``run_table1`` through the runner with ``workers>1``
   produces rows identical to the serial path (the simulation is
   deterministic, and both modes execute the very same specs).
2. **Speedup** — on a multi-core host, fanning the ten Table I sessions
   across worker processes beats the serial path by >= 2x. On a single-core
   host the wall-clock comparison is still recorded, but no speedup is
   demanded (there is nothing to parallelize onto).
3. **Cache** — re-running an experiment with the content-keyed session
   cache skips every session entirely (all ten Table I sessions are
   cacheable, golden and suspects alike).
"""

import os
import time

from benchmarks.conftest import write_artifact
from repro.experiments.batch import GoldenPrintCache, shared_cache
from repro.experiments.table1 import run_table1


def test_batch_runner_parity_speedup_and_cache(benchmark, out_dir):
    cpus = os.cpu_count() or 1
    parallel_workers = min(4, max(2, cpus))

    t0 = time.perf_counter()
    serial_rows = run_table1(workers=1)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        return run_table1(workers=parallel_workers)

    t0 = time.perf_counter()
    parallel_rows = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    # Parity: the parallel path reproduces the serial rows exactly.
    assert parallel_rows == serial_rows

    # Cache: the content-keyed cache makes every session free on a rerun.
    cache = GoldenPrintCache()
    run_table1(workers=1, cache=cache)
    cached_sessions = len(cache)
    assert cached_sessions == 10  # golden + nine suspects, all content-keyed
    t0 = time.perf_counter()
    cached_rows = run_table1(workers=1, cache=cache)
    cached_s = time.perf_counter() - t0
    assert cache.hits == cached_sessions
    assert cached_rows == serial_rows

    lines = [
        f"host CPUs: {cpus}",
        f"serial (workers=1):            {serial_s:7.2f}s",
        f"parallel (workers={parallel_workers}):         {parallel_s:7.2f}s  "
        f"(speedup {speedup:.2f}x)",
        f"serial + warm golden cache:    {cached_s:7.2f}s",
        f"rows identical serial/parallel/cached: yes",
        f"shared cache entries process-wide: {len(shared_cache())}",
    ]
    text = "\n".join(lines)
    write_artifact(out_dir, "batch_runner.txt", text)
    print("\n" + text)

    # Speedup is only a claim where there are cores to fan onto.
    if cpus >= 4:
        assert speedup >= 2.0, f"expected >=2x on {cpus} CPUs, got {speedup:.2f}x"
    elif cpus >= 2:
        assert speedup >= 1.3, f"expected >=1.3x on {cpus} CPUs, got {speedup:.2f}x"
