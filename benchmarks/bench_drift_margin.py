"""Benchmark: regenerate the **Section V-C drift** evidence for the 5% margin.

Paper shape: "time noise" makes step counts drift between known-good prints,
but always by less than 5 %, and the end-of-print totals match exactly —
which is what makes the per-transaction margin + final 0 % check sound.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.drift import run_drift


def test_drift_stays_under_margin(benchmark, out_dir, batch_kwargs):
    experiment = benchmark.pedantic(run_drift, kwargs=batch_kwargs, rounds=1, iterations=1)
    text = experiment.render()
    write_artifact(out_dir, "drift.txt", text)
    print("\n" + text)

    assert experiment.within_margin(5.0)
    assert experiment.max_percent > 0.0  # the noise model actually does something
    assert experiment.all_final_totals_equal
    # Pairwise stats across 4 prints: C(4,2) = 6 comparisons.
    assert len(experiment.stats) == 6
