"""Benchmark: raw session throughput — the precise path vs the fast path.

Measures cold-cache sessions/sec and events/sec over the smoke grid's unique
sessions, once per execution path, and records both in
``benchmarks/out/session_speed.txt``. The two paths are byte-identical in
verdicts (pinned by ``tests/test_fast_path.py`` and the parity harness), so
the only thing this artifact tracks is speed.

Doubles as the CI non-regression gate::

    python benchmarks/bench_session_speed.py --check

re-measures the fast-path smoke figure and fails (exit 1) if it drops below
:data:`FLOOR_SESSIONS_PER_S` — a deliberately conservative floor (set from a
measured figure, with generous headroom for slow CI runners) that catches
"the fast path silently stopped batching", not ordinary machine-to-machine
variance. Re-record the floor when the measured figure changes on purpose.
"""

import argparse
import sys
import time
from dataclasses import replace

from repro.experiments.batch import execute_spec
from repro.experiments.scenario import compile_scenario, grid_scenarios

# Fast-path smoke-grid floor, in sessions/sec (cold cache, single process).
# Measured ~4.9 sessions/s on the reference container; the floor sits far
# below that so only a real regression (not runner noise) trips it.
FLOOR_SESSIONS_PER_S = 1.2


def smoke_specs():
    """The smoke grid's unique sessions (golden dedup applied), precise."""
    unique = {}
    for scenario in grid_scenarios("smoke"):
        for spec in compile_scenario(scenario, fast_path=False):
            unique.setdefault(spec.content_key(), spec)
    return list(unique.values())


def measure(specs, fast_path):
    """Run every spec cold; returns (elapsed_s, sessions, events)."""
    events = 0
    t0 = time.perf_counter()
    for spec in specs:
        result = execute_spec(replace(spec, fast_path=fast_path))
        events += result.events_dispatched
    elapsed = time.perf_counter() - t0
    return elapsed, len(specs), events


def render(precise, fast) -> str:
    lines = ["smoke-grid session throughput (cold cache, single process)", ""]
    for label, (elapsed, sessions, events) in (("precise", precise), ("fast", fast)):
        lines.append(
            f"{label:<8} {sessions} sessions in {elapsed:6.2f}s  "
            f"{sessions / elapsed:6.2f} sessions/s  "
            f"{events / elapsed / 1e6:6.2f}M events/s  "
            f"({events} events)"
        )
    p_elapsed, _, _ = precise
    f_elapsed, _, _ = fast
    lines += [
        "",
        f"fast-path speedup: {p_elapsed / f_elapsed:.2f}x",
        f"CI floor (fast, sessions/s): {FLOOR_SESSIONS_PER_S}",
    ]
    return "\n".join(lines)


def run_check() -> int:
    """The CI gate: fast-path smoke throughput must clear the floor."""
    elapsed, sessions, events = measure(smoke_specs(), fast_path=True)
    rate = sessions / elapsed
    print(
        f"fast path: {sessions} smoke sessions in {elapsed:.2f}s "
        f"= {rate:.2f} sessions/s (floor {FLOOR_SESSIONS_PER_S})"
    )
    if rate < FLOOR_SESSIONS_PER_S:
        print("FAIL: fast-path session throughput regressed below the floor")
        return 1
    print("OK")
    return 0


def run_record(out_path: str) -> int:
    specs = smoke_specs()
    precise = measure(specs, fast_path=False)
    fast = measure(specs, fast_path=True)
    text = render(precise, fast)
    print(text)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\nwrote {out_path}")
    return 0


def test_session_speed(out_dir):
    """Pytest entry (``pytest benchmarks/ --benchmark-only`` suite)."""
    from benchmarks.conftest import write_artifact

    specs = smoke_specs()
    precise = measure(specs, fast_path=False)
    fast = measure(specs, fast_path=True)
    write_artifact(out_dir, "session_speed.txt", render(precise, fast))
    p_elapsed, _, _ = precise
    f_elapsed, sessions, _ = fast
    assert sessions / f_elapsed >= FLOOR_SESSIONS_PER_S
    assert f_elapsed < p_elapsed  # the fast path must actually be faster


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: re-measure the fast-path smoke figure against the floor",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/out/session_speed.txt",
        help="artifact path for the full record (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return run_check()
    return run_record(args.out)


if __name__ == "__main__":
    sys.exit(main())
