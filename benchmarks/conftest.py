"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index), asserts the reproduced *shape* of the
result, and writes the rendered artifact to ``benchmarks/out/`` for
inspection. Run with::

    pytest benchmarks/ --benchmark-only
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def out_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: str, name: str, text: str) -> str:
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return path
