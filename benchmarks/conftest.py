"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index), asserts the reproduced *shape* of the
result, and writes the rendered artifact to ``benchmarks/out/`` for
inspection. Run with ``make bench`` (``pytest benchmarks/ -q``).

pytest-benchmark is optional: when the plugin is installed its real
``benchmark`` fixture measures timing stats as usual; when it is absent
(the repo has zero mandatory third-party deps, and CI installs none) a
pass-through fixture defined below runs each benchmarked callable once so
the suite still executes as a correctness check.

The experiment benchmarks execute their print sessions through the
:class:`~repro.experiments.batch.BatchRunner`; set ``REPRO_BENCH_WORKERS``
to fan sessions across that many worker processes (``0`` = one per CPU)
and ``REPRO_BENCH_NO_CACHE=1`` to disable the session cache::

    REPRO_BENCH_WORKERS=4 make bench
"""

import os
import sys

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

# The bench modules import ``benchmarks.conftest``, which needs the repo
# root importable even when pytest is invoked from inside benchmarks/.
_REPO_ROOT = os.path.dirname(_BENCH_DIR)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)


def _inside_bench_dir(path: str) -> bool:
    resolved = os.path.abspath(path)
    return resolved == _BENCH_DIR or resolved.startswith(_BENCH_DIR + os.sep)


def _invocation_paths(config):
    """Resolved filesystem paths of the invocation's positional arguments."""
    invocation_dir = os.path.abspath(str(config.invocation_params.dir))
    paths = []
    for arg in config.invocation_params.args:
        text = str(arg).split("::", 1)[0]
        if not text or text.startswith("-"):
            continue
        if not os.path.isabs(text):
            text = os.path.join(invocation_dir, text)
        paths.append(os.path.abspath(text))
    return invocation_dir, paths


def _benchmarks_targeted(config) -> bool:
    """True when the pytest invocation explicitly points at benchmarks/."""
    invocation_dir, paths = _invocation_paths(config)
    if _inside_bench_dir(invocation_dir):
        return True  # e.g. ``cd benchmarks && pytest``
    return any(_inside_bench_dir(path) for path in paths)


def pytest_collect_file(file_path, parent):
    """Collect ``bench_*.py`` modules when benchmarks/ is targeted explicitly.

    The suite's files deliberately don't match pytest's default
    ``test_*.py`` pattern, so a plain ``pytest`` from the repo root never
    pulls these slow regenerations into the tier-1 run. This hook makes the
    documented ``pytest benchmarks/ --benchmark-only`` invocation work.
    Files named directly on the command line are collected natively by
    pytest, so the hook defers on those to avoid double collection.
    """
    if not (file_path.suffix == ".py" and file_path.name.startswith("bench_")):
        return None
    _, arg_paths = _invocation_paths(parent.config)
    fp = str(file_path)
    covered_by_dir_arg = any(
        os.path.isdir(p) and (fp == p or fp.startswith(p + os.sep))
        for p in arg_paths
    )
    if fp in arg_paths and not covered_by_dir_arg:
        return None  # pytest collects direct file args itself
    if _benchmarks_targeted(parent.config):
        import pytest as _pytest

        return _pytest.Module.from_parent(parent, path=file_path)
    return None


def bench_workers() -> int:
    """Worker-process count for batched benchmarks (env-tunable)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_cache_dir() -> str:
    """Optional persistent golden-cache directory for benchmark runs."""
    return os.environ.get("REPRO_BENCH_CACHE_DIR", "")


def bench_cache():
    """The cache option batched benchmarks run under.

    ``REPRO_BENCH_CACHE_DIR`` selects a persistent on-disk cache,
    ``REPRO_BENCH_NO_CACHE=1`` disables caching, otherwise the shared
    in-process cache is used.
    """
    if bench_cache_dir():
        return bench_cache_dir()
    return os.environ.get("REPRO_BENCH_NO_CACHE", "") != "1"


def bench_provenance() -> str:
    """One line recording the knobs a benchmark artifact was produced under.

    Perf numbers are only comparable between runs that used the same worker
    count and cache mode, so every artifact records both.
    """
    cache = bench_cache()
    if isinstance(cache, str):
        cache_mode = f"dir:{cache}"
    else:
        cache_mode = "shared" if cache else "off"
    return f"[bench config] workers={bench_workers()} cache={cache_mode}"


class _PassThroughBenchmark:
    """Minimal stand-in for pytest-benchmark's fixture: run once, no stats."""

    def __call__(self, func, *args, **kwargs):
        return func(*args, **kwargs)

    def pedantic(
        self, func, args=(), kwargs=None, rounds=1, iterations=1, **_ignored
    ):
        return func(*args, **(kwargs or {}))


class _FallbackBenchmarkPlugin:
    """Registered only when pytest-benchmark is absent or disabled, so an
    installed plugin keeps its real ``benchmark`` fixture (a conftest-level
    fixture would shadow the plugin's unconditionally)."""

    @pytest.fixture
    def benchmark(self):
        return _PassThroughBenchmark()


def pytest_configure(config):
    if not config.pluginmanager.hasplugin("benchmark"):
        config.pluginmanager.register(
            _FallbackBenchmarkPlugin(), "repro-fallback-benchmark"
        )


@pytest.fixture(scope="session")
def batch_kwargs() -> dict:
    """Keyword arguments forwarded to every batched experiment run."""
    return dict(workers=bench_workers(), cache=bench_cache())


@pytest.fixture(scope="session")
def out_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: str, name: str, text: str) -> str:
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
        handle.write(f"\n{bench_provenance()}\n")
    return path
