# Developer entry points. The repo has no third-party runtime deps;
# ruff is optional (the lint target degrades to a syntax check without it).

PYTHONPATH := src
export PYTHONPATH

# Where `make ci` / `make smoke` persist the session cache. CI points this
# at the actions/cache-restored directory; locally it lives untracked in
# the repo root (see .gitignore).
REPRO_CI_CACHE_DIR ?= .repro-session-cache

.PHONY: test lint lint-det lint-tests bench sweep smoke smoke-service smoke-distrib smoke-steal speed-gate ci serve

test:
	python -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks scripts; \
	else \
		echo "ruff not installed (pip install ruff); falling back to a syntax check"; \
		python -m compileall -q src tests benchmarks scripts; \
	fi

# The in-repo determinism & wire-safety analyzer (src/repro/analysis/lint):
# DET001-DET004 guard the byte-identical-verdict contract (no builtin
# hash() keying, no unseeded RNG, no wall clock in sim code, no bare set
# iteration feeding serialization); WIRE001/WIRE002 guard the pickle wire
# format (atomic writes via repro.util, vetted wire-class fields); the
# cross-file contract rules (CACHE001 cache-key completeness, WIRE003
# wire-schema drift vs. the committed .repro-wire-schema.json baseline,
# CONC001 TOCTOU, CONC002 lock consistency, DET005 detector conformance)
# check the project model as a whole. Non-baselined findings fail; entries
# in .repro-lint-baseline.json warn (refresh: `repro lint --update-baseline`).
# Rule docs: `python -m repro lint --rules`.
lint-det:
	python -m repro lint

# The test tree under the relaxed `tests` profile: wall-clock/RNG/set-order
# rules off (tests measure wall time and use throwaway randomness on
# purpose), atomic-write + TOCTOU + contract rules still on.
lint-tests:
	python -m repro lint --profile tests

# Micro-benchmarks. With pytest-benchmark installed these report timing
# stats; without it, benchmarks/conftest.py substitutes a pass-through
# `benchmark` fixture so the suite still runs as a plain correctness check
# (the repo keeps zero mandatory third-party deps).
bench:
	python -m pytest benchmarks/ -q

# sweep's nonzero exit means "detection gap reported", not "crash" — don't
# fail the make run over it.
sweep:
	python -m repro sweep --grid full --workers 0 || \
		echo "sweep exited $$? — a detection gap or false positive is reported above"

# The incremental smoke sweep: persistent session cache + CSV/HTML reports
# (written under benchmarks/out/, not the repo root; both are gitignored).
# A warm cache makes this a zero-resimulation no-op; unlike `make sweep`,
# a detection gap here IS a failure (the smoke grid must stay green).
smoke:
	python -m repro sweep --grid smoke \
		--cache-dir $(REPRO_CI_CACHE_DIR) \
		--csv benchmarks/out/smoke-sweep.csv \
		--html benchmarks/out/smoke-sweep.html

# Service smoke: drive the sweep service end-to-end in-process (WSGI app +
# SQLite job store): submit the smoke grid over HTTP, poll to completion,
# assert the served report.csv is byte-identical to the `make smoke` CSV,
# and assert a warm resubmission (same instance AND a second instance over
# the same store file) is answered from the store with 0 sessions simulated.
# Runs after `make smoke` so the reference CSV and session cache are warm.
smoke-service:
	python scripts/smoke_service.py \
		--cache-dir $(REPRO_CI_CACHE_DIR) \
		--record benchmarks/out/smoke-service.txt

# Run the sweep service locally (zero-dep stdlib server unless the
# [service] extra's FastAPI stack is importable).
serve:
	python -m repro serve --cache-dir $(REPRO_CI_CACHE_DIR)

# Distributed smoke parity: the smoke grid through serial, `--hosts 2
# --workers 2` (worker-side scoring, verdict-row payloads), a warm repeat,
# and `--ship-summaries` must yield byte-identical verdict CSVs; the repeat
# must simulate nothing and verdict payloads must undercut summary payloads
# >= 5x. The measured bytes are recorded in benchmarks/out/.
smoke-distrib:
	python scripts/smoke_distrib.py --workers 2 \
		--record benchmarks/out/distributed_sweep.txt

# Elastic work-stealing smoke: the smoke grid over the HTTP shard-queue
# transport (in-process service), two throttled straggler workers, and one
# real late-joining `repro worker <url>` subprocess. The late joiner must
# steal >= 1 shard and shorten the straggling sweep; verdict CSVs stay
# byte-identical to serial and the warm repeat simulates 0 sessions.
smoke-steal:
	python scripts/smoke_steal.py \
		--record benchmarks/out/steal_sweep.txt

# Fast-path throughput non-regression gate: re-measures the smoke grid's
# cold sessions/sec through the vectorized fast path and fails if it drops
# below the floor recorded in benchmarks/bench_session_speed.py.
speed-gate:
	python benchmarks/bench_session_speed.py --check

# Mirrors .github/workflows/ci.yml step for step so CI and dev runs stay in
# lockstep: lint -> determinism/contract lint (src + test profile) ->
# tier-1 tests -> incremental smoke sweep -> service smoke (HTTP parity +
# store dedup) -> distributed smoke parity -> elastic work-stealing smoke
# -> fast-path speed gate.
ci: lint lint-det lint-tests test smoke smoke-service smoke-distrib smoke-steal speed-gate
