# Developer entry points. The repo has no third-party runtime deps;
# ruff is optional (the lint target degrades to a syntax check without it).

PYTHONPATH := src
export PYTHONPATH

.PHONY: test lint bench sweep

test:
	python -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed (pip install ruff); falling back to a syntax check"; \
		python -m compileall -q src tests benchmarks; \
	fi

bench:
	python -m pytest benchmarks/ --benchmark-only

# sweep's nonzero exit means "detection gap reported", not "crash" — don't
# fail the make run over it (the full grid has a known T9@tiny gap).
sweep:
	python -m repro sweep --grid full --workers 0 || \
		echo "sweep exited $$? — a detection gap or false positive is reported above"
